//! `simcheck`: bounded adversarial schedule exploration over golden worlds.
//!
//! The chaos harness ([`crate::chaos`]) proves the stack survives *faults*;
//! this module proves it survives *schedules*. A seeded scheduler plugged
//! into the `msg` mailbox ([`msg::SchedPlan`]) permutes which matching
//! message a wildcard `recv` takes and jitters per-message delivery times,
//! then a set of oracles checks that nothing observable moved:
//!
//! * **physics** — the treecode worlds must produce bit-identical
//!   accelerations and positions on every schedule of the same initial
//!   conditions (a per-rank FNV digest over the final state, folded with
//!   a wildcard gather so divergence on *any* rank surfaces at rank 0);
//! * **structure** — [`obs::schedule_digest`] (span counts, message
//!   counts, schedule-invariant counters) must match the reference
//!   schedule exactly;
//! * **exactly-once** — the ABM storm world must deliver every posted
//!   message exactly once under reorder + duplicate faults, with Safra
//!   termination still firing (the multiset of received ids equals the
//!   multiset of posted ids), and the queries world must resolve every
//!   issued query to exactly one merged reply (no duplicates, no drops,
//!   none after the client timeout) no matter how the scheduler races
//!   the route / forward / reply phases;
//! * **liveness** — the virtual-time watchdog inside the scheduler flags
//!   any schedule that parks every rank with nothing in flight
//!   (deadlock) or runs past a budget derived from the reference run;
//! * **trace invariants** — every schedule's trace must pass
//!   [`obs::WorldTrace::check_invariants`] and the analysis identities:
//!   the critical path tiles the horizon and the efficiency
//!   factorization multiplies back together.
//!
//! Any failing `(world, seed, schedule)` triple replays deterministically:
//! all plan randomness is derived from the triple, every run records the
//! source each wildcard receive actually took ([`msg::ScheduleLog`]), and
//! replay forces those recorded decisions back in order. [`shrink`] then
//! minimizes the failure to the smallest recorded decision *prefix* that
//! still trips an oracle (decisions past the prefix fall back to
//! first-match delivery).

use crate::golden_ics;
use crate::ics::SplitMix64;
use hot::gravity::{Accel, GravityConfig};
use hot::traverse::group_accelerations;
use hot::tree::{Body, Tree};
use msg::{
    replay_with_faults_and_schedule_observed, replay_with_schedule_observed,
    run_with_faults_and_schedule_observed, run_with_schedule_observed, Abm, Comm, FaultPlan,
    Machine, SchedOutcome, SchedPlan, ScheduleLog, Termination,
};
use obs::WorldTrace;

/// Tag bases for the hand-rolled wildcard exchanges (chosen far away from
/// anything the collectives or ABM use).
const EXCHANGE_TAG0: msg::Tag = 1 << 20;
const DIGEST_TAG: msg::Tag = 1 << 21;

/// Knobs for one simcheck sweep. The defaults match the CI configuration:
/// 16-rank worlds of ~a hundred bodies for a few steps — small enough
/// that a 64-seed sweep finishes in seconds, large enough that every
/// step's exchange offers the scheduler hundreds of reorderable picks.
#[derive(Debug, Clone, Copy)]
pub struct SimcheckConfig {
    pub ranks: usize,
    pub bodies: usize,
    pub steps: u64,
    /// Perturbed schedules checked per (world, seed), besides the
    /// reference schedule.
    pub schedules: u64,
    /// Per-message delivery jitter amplitude (virtual seconds).
    pub jitter_s: f64,
}

impl Default for SimcheckConfig {
    fn default() -> Self {
        SimcheckConfig {
            ranks: 16,
            bodies: 96,
            steps: 3,
            schedules: 2,
            jitter_s: 2.0e-5,
        }
    }
}

/// The golden worlds a sweep drives. `Treecode` is the fault-free
/// replicated-KDK treecode (the treecode16 bench scenario's physics
/// without its checkpoint machinery), `Chaos` is the same physics under
/// duplicate + reorder injection (the chaos16 class), `Storm` is an
/// ABM message cascade with Safra termination under the same faults,
/// `Overlap` is the distributed HOT traversal (`hot::parallel`) whose
/// deferred-walk queue and adaptive ABM batching the scheduler jitters
/// directly, `Degraded` is the treecode physics with the failure
/// detector armed and one rank dragging a large per-step compute skew —
/// every exchange then rides a suspicion storm (raise, vote, retract)
/// whose verdicts must all stay withheld, with physics bit-identical to
/// `Treecode` — and `Queries` is the interactive query engine
/// (`query::run`): replicated physics serving a seeded client fleet's
/// point / region / kNN / time-travel queries through the per-tick
/// route–forward–reply protocol, whose fixed message structure keeps
/// the structure oracle binding and whose exactly-once reply contract
/// (every issued query answered exactly once, never after the client
/// timeout) is checked directly on the per-rank stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum World {
    Treecode,
    Chaos,
    Storm,
    Overlap,
    Degraded,
    Queries,
}

impl World {
    pub const ALL: [World; 6] = [
        World::Treecode,
        World::Chaos,
        World::Storm,
        World::Overlap,
        World::Degraded,
        World::Queries,
    ];

    pub fn name(self) -> &'static str {
        match self {
            World::Treecode => "treecode16",
            World::Chaos => "chaos16",
            World::Storm => "storm16",
            World::Overlap => "overlap16",
            World::Degraded => "degraded16",
            World::Queries => "queries16",
        }
    }

    fn id(self) -> u64 {
        match self {
            World::Treecode => 1,
            World::Chaos => 2,
            World::Storm => 3,
            World::Overlap => 4,
            World::Degraded => 5,
            World::Queries => 6,
        }
    }
}

/// Virtual compute skew the degraded world's straggler rank (the highest
/// rank) drags behind every step: two orders of magnitude above the
/// heartbeat cadence, so each exchange forces a real suspicion storm that
/// the confirmation window must then retract.
const DRAG_S: f64 = 0.05;

/// One oracle violation. The `(world, seed, schedule)` triple identifies
/// the failing run; [`shrink`] re-records it and minimizes the recorded
/// schedule to the smallest per-rank decision prefix that still fails
/// (`prefix = None` means the full adversarial schedule).
#[derive(Debug, Clone)]
pub struct Violation {
    pub world: World,
    pub seed: u64,
    pub schedule: u64,
    /// After [`shrink`]: ranks follow the recorded wildcard decisions for
    /// this many picks, then fall back to reference first-match.
    pub prefix: Option<usize>,
    pub oracle: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} seed={} schedule={}{}] {}: {}",
            self.world.name(),
            self.seed,
            self.schedule,
            match self.prefix {
                Some(p) => format!(" prefix={p}"),
                None => String::new(),
            },
            self.oracle,
            self.detail
        )
    }
}

/// What the reference (first-match, jitter-free) schedule of a world
/// produced; perturbed schedules are judged against it.
struct Reference {
    /// Per-rank physics/content digests (rank 0's folds the whole world).
    digests: Vec<u64>,
    /// Schedule-invariant trace digest.
    trace_digest: u64,
    /// Virtual end time; perturbed schedules get `10x + margin` as their
    /// liveness budget.
    end_vtime_s: f64,
}

// ---------------------------------------------------------------------------
// Plan derivation: everything random about a run is a pure function of
// (config, world, seed, schedule), which is what makes replay exact.
// ---------------------------------------------------------------------------

fn mix(world: World, seed: u64, schedule: u64) -> u64 {
    let mut s = SplitMix64(
        seed ^ world.id().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ schedule.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    s.next_u64()
}

/// The schedule plan for one `(world, seed, schedule)` triple. Schedule 0
/// is always the reference: first-match delivery, no jitter, unlimited
/// budget (the deadlock watchdog stays armed).
pub fn sched_plan(cfg: &SimcheckConfig, world: World, seed: u64, schedule: u64) -> SchedPlan {
    if schedule == 0 {
        SchedPlan::reference(mix(world, seed, 0))
    } else {
        SchedPlan::new(mix(world, seed, schedule)).with_jitter(cfg.jitter_s)
    }
}

/// The fault plan for the faulted worlds. Duplicates and reordering only:
/// crashes would drag in the checkpoint/restart harness, which chaos.rs
/// already covers, and drops are repaired by the same retransmit path
/// duplicates exercise.
pub fn fault_plan(world: World, seed: u64, schedule: u64) -> Option<FaultPlan> {
    match world {
        World::Treecode | World::Overlap | World::Queries => None,
        World::Chaos | World::Storm => Some(
            FaultPlan::none(mix(world, seed, schedule) ^ 0xFA17_0000_0000_0001)
                .with_duplicate(0.2)
                .with_reorder(0.2),
        ),
        // The degraded world injects no message faults: the adversary is
        // the failure detector itself, fed a straggler's clock skew.
        World::Degraded => Some(
            FaultPlan::none(mix(world, seed, schedule) ^ 0xFA17_0000_0000_0002)
                .with_heartbeat(msg::HeartbeatConfig::default()),
        ),
    }
}

// ---------------------------------------------------------------------------
// Worlds
// ---------------------------------------------------------------------------

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn digest_state(bodies: &[Body], accel: &[Accel]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bodies {
        for d in 0..3 {
            h = fnv1a(h, &b.pos[d].to_bits().to_le_bytes());
            h = fnv1a(h, &b.vel[d].to_bits().to_le_bytes());
        }
        h = fnv1a(h, &b.id.to_le_bytes());
    }
    for a in accel {
        for d in 0..3 {
            h = fnv1a(h, &a.acc[d].to_bits().to_le_bytes());
        }
        h = fnv1a(h, &a.pot.to_bits().to_le_bytes());
    }
    h
}

/// The index range of the acceleration stripe rank `r` owns.
fn stripe(n: usize, size: usize, r: usize) -> std::ops::Range<usize> {
    (r * n / size)..((r + 1) * n / size)
}

/// The replicated-KDK treecode body: every rank integrates the full body
/// set but *owns* one stripe of the acceleration array, and — unlike the
/// chaos harness, which allgathers — the stripes are exchanged with raw
/// sends and **wildcard** receives, so every step hands the adversarial
/// scheduler `size - 1` reorderable picks per rank. Delivery integrity
/// decides the physics: replicas adopt the received stripes verbatim.
///
/// Returns this rank's state digest; rank 0's additionally folds every
/// other rank's digest (gathered with one more wildcard recv loop), so a
/// divergent replica changes rank 0's answer even if its own stripe was
/// consistent.
fn treecode_world(
    comm: &mut Comm,
    ics: &[Body],
    gcfg: &GravityConfig,
    steps: u64,
    dt: f64,
    drag: Option<(usize, f64)>,
) -> u64 {
    let n = ics.len();
    let size = comm.size();
    let rank = comm.rank();
    let mut bodies = ics.to_vec();
    let mut accel = {
        let tree = Tree::build(std::mem::take(&mut bodies), gcfg.leaf_max);
        let (a, _) = group_accelerations(&tree, gcfg);
        bodies = tree.bodies;
        a
    };
    for step in 0..steps {
        for (b, a) in bodies.iter_mut().zip(&accel) {
            for d in 0..3 {
                b.vel[d] += 0.5 * dt * a.acc[d];
                b.pos[d] += dt * b.vel[d];
            }
        }
        comm.span_enter("simcheck.force");
        let tree = Tree::build(std::mem::take(&mut bodies), gcfg.leaf_max);
        let (full, stats) = group_accelerations(&tree, gcfg);
        bodies = tree.bodies;
        let share = 1.0 / size as f64;
        comm.obs_count(
            "walk.interactions",
            ((stats.p2p + stats.m2p) as f64 * share) as u64,
        );
        comm.compute_eff(
            stats.flops(gcfg.quadrupole) * share,
            std::mem::size_of_val(ics) as f64 * share,
            790.0 / 5060.0,
        );
        // The degraded world's straggler: one rank's force phase drags a
        // large extra virtual cost, so its silence (as seen by virtual
        // clocks) crosses the suspicion threshold every step.
        if let Some((slow_rank, drag_s)) = drag {
            if rank == slow_rank {
                comm.elapse(drag_s);
            }
        }
        comm.span_exit("simcheck.force");
        comm.span_enter("simcheck.exchange");
        let tag = EXCHANGE_TAG0 + step as msg::Tag;
        let mine: Vec<[f64; 4]> = full[stripe(n, size, rank)]
            .iter()
            .map(|a| [a.acc[0], a.acc[1], a.acc[2], a.pot])
            .collect();
        for dst in 0..size {
            if dst != rank {
                comm.send(dst, tag, mine.clone());
            }
        }
        // Adopt own stripe directly, everyone else's from the wire. The
        // wildcard source is the point: which peer's stripe lands first
        // is the scheduler's choice.
        let own = stripe(n, size, rank);
        for (a, v) in accel[own].iter_mut().zip(&mine) {
            *a = Accel {
                acc: [v[0], v[1], v[2]],
                pot: v[3],
            };
        }
        for _ in 0..size - 1 {
            let (src, part): (usize, Vec<[f64; 4]>) = comm.recv(None, tag);
            let range = stripe(n, size, src);
            assert_eq!(part.len(), range.len(), "stripe {src} truncated");
            for (a, v) in accel[range].iter_mut().zip(&part) {
                *a = Accel {
                    acc: [v[0], v[1], v[2]],
                    pot: v[3],
                };
            }
        }
        comm.span_exit("simcheck.exchange");
        for (b, a) in bodies.iter_mut().zip(&accel) {
            for d in 0..3 {
                b.vel[d] += 0.5 * dt * a.acc[d];
            }
        }
    }
    let mut digest = digest_state(&bodies, &accel);
    if rank == 0 {
        // Fold every replica's digest, gathered via wildcard recvs, in
        // rank order (sorting makes the fold schedule-independent; the
        // physics oracle still sees any divergence because the *values*
        // feed the fold).
        let mut peers = vec![0u64; size];
        peers[0] = digest;
        for _ in 0..size - 1 {
            let (src, d): (usize, u64) = comm.recv(None, DIGEST_TAG);
            peers[src] = d;
        }
        let mut h = FNV_OFFSET;
        for d in &peers {
            h = fnv1a(h, &d.to_le_bytes());
        }
        digest = h;
    } else {
        comm.send(0, DIGEST_TAG, digest);
    }
    digest
}

/// The latency-hiding world: the distributed HOT traversal
/// ([`hot::parallel`]) on a strided split of the golden ICs. Every remote
/// fetch parks a walk on the deferred queue, and every ABM poll is a
/// wildcard receive — so the adversarial scheduler directly permutes the
/// order parked walks resume. The physics digest then proves the
/// deferred-walk engine is schedule-independent: rank-ordered partial-
/// moment merges and single-evaluation interaction lists must make the
/// forces bit-identical no matter how replies raced. Message *structure*
/// (batch fill, deadline flushes, request counts) is schedule-dependent
/// by design, so — like the storm world — overlap16 is exempt from the
/// structure oracle, and a recorded decision log is only replayable as a
/// prefix (shrink's fallback mode), never as a full pinned execution.
fn overlap_world(comm: &mut Comm, ics: &[Body], gcfg: &GravityConfig) -> u64 {
    let size = comm.size();
    let rank = comm.rank();
    let mine: Vec<Body> = ics
        .iter()
        .enumerate()
        .filter(|(i, _)| i % size == rank)
        .map(|(_, b)| *b)
        .collect();
    let pcfg = hot::parallel::ParallelConfig {
        gravity: *gcfg,
        ..Default::default()
    };
    let r = hot::parallel::parallel_accelerations(comm, mine, &pcfg);
    let mut digest = digest_state(&r.bodies, &r.accel);
    if rank == 0 {
        // Same rank-ordered fold as the treecode world: any replica's
        // divergence reaches rank 0's digest.
        let mut peers = vec![0u64; size];
        peers[0] = digest;
        for _ in 0..size - 1 {
            let (src, d): (usize, u64) = comm.recv(None, DIGEST_TAG);
            peers[src] = d;
        }
        let mut h = FNV_OFFSET;
        for d in &peers {
            h = fnv1a(h, &d.to_le_bytes());
        }
        digest = h;
    } else {
        comm.send(0, DIGEST_TAG, digest);
    }
    digest
}

/// Queries each rank's client fleet issues in the queries world.
const QUERIES_PER_RANK: u64 = 8;

/// What one rank of the queries world reports back to the harness.
struct QueriesOut {
    /// FNV fold of every merged answer (in issue order), every committed
    /// shard's bytes, and the protocol counters — the content digest the
    /// physics oracle pins across schedules.
    digest: u64,
    stats: query::QueryStats,
}

fn digest_answer(mut h: u64, a: &query::Answer) -> u64 {
    match a {
        query::Answer::Missing => fnv1a(h, &[0]),
        query::Answer::Point(p) => {
            h = fnv1a(h, &[1]);
            h = fnv1a(h, &p.id.to_le_bytes());
            for d in 0..3 {
                h = fnv1a(h, &p.pos[d].to_bits().to_le_bytes());
                h = fnv1a(h, &p.vel[d].to_bits().to_le_bytes());
            }
            fnv1a(h, &p.mass.to_bits().to_le_bytes())
        }
        query::Answer::Ids(ids) => {
            h = fnv1a(h, &[2]);
            for id in ids {
                h = fnv1a(h, &id.to_le_bytes());
            }
            h
        }
        query::Answer::Neighbors(hits) => {
            h = fnv1a(h, &[3]);
            for hit in hits {
                h = fnv1a(h, &hit.id.to_le_bytes());
                h = fnv1a(h, &hit.dist2.to_bits().to_le_bytes());
            }
            h
        }
        query::Answer::NotCommitted => fnv1a(h, &[4]),
    }
}

/// The interactive-query world: `query::run` over the golden ICs with a
/// seeded client fleet per rank. A chunky timestep keeps bodies crossing
/// stripe boundaries so stale-routed point queries exercise the forward
/// path under every schedule; the client timeout is effectively infinite
/// (the exactly-once oracle separately requires zero late replies, so a
/// finite timeout would couple the oracle to schedule jitter).
fn queries_world(comm: &mut Comm, ics: &[Body], steps: u64) -> QueriesOut {
    let cfg = query::EngineConfig {
        dt: 0.05,
        steps,
        checkpoint_every: 2,
        fleet: query::FleetConfig {
            per_rank: QUERIES_PER_RANK,
            timeout_s: 1.0e3,
            ..Default::default()
        },
        ..Default::default()
    };
    let out = query::run(comm, ics.to_vec(), &cfg);
    let mut h = FNV_OFFSET;
    for r in &out.replies {
        h = fnv1a(h, &r.qid.to_le_bytes());
        h = fnv1a(h, &r.tick.to_le_bytes());
        h = fnv1a(h, &r.at_step.unwrap_or(u64::MAX).to_le_bytes());
        h = digest_answer(h, &r.answer);
    }
    for (step, bytes) in &out.commits {
        h = fnv1a(h, &step.to_le_bytes());
        h = fnv1a(h, bytes);
    }
    h = fnv1a(h, &out.stats.forwarded.to_le_bytes());
    h = fnv1a(h, &out.stats.not_found.to_le_bytes());
    QueriesOut {
        digest: h,
        stats: out.stats,
    }
}

/// Queries-world completion: the exactly-once query-reply oracle. Every
/// issued query must be answered exactly once (no duplicates, no drops),
/// never after the client timeout — checked on the raw per-rank stats,
/// flagged even on the reference schedule — then the per-rank content
/// digests feed the generic cross-schedule oracle.
fn finish_queries(lists: Vec<QueriesOut>, trace: Option<WorldTrace>) -> WorldResult {
    let mut errors = Vec::new();
    for (rank, o) in lists.iter().enumerate() {
        let s = &o.stats;
        if s.issued != QUERIES_PER_RANK {
            errors.push(format!(
                "rank {rank}: issued {} of {QUERIES_PER_RANK}",
                s.issued
            ));
        }
        if s.answered != s.issued || s.unanswered != 0 {
            errors.push(format!(
                "rank {rank}: {} of {} queries answered ({} unanswered)",
                s.answered, s.issued, s.unanswered
            ));
        }
        if s.dup_replies != 0 {
            errors.push(format!("rank {rank}: {} duplicate replies", s.dup_replies));
        }
        if s.late != 0 {
            errors.push(format!(
                "rank {rank}: {} replies after the client timeout",
                s.late
            ));
        }
    }
    let delivery_error = if errors.is_empty() {
        None
    } else {
        Some(errors.join("; "))
    };
    WorldResult::Done {
        digests: lists.iter().map(|o| o.digest).collect(),
        trace: trace.expect("completed scheduled world always yields a trace"),
        delivery_error,
    }
}

/// The ABM storm body: every rank posts `per_rank` identified messages to
/// pseudo-random destinations (a pure hash of the id — no RNG state, so
/// every schedule posts the identical multiset), then drains and polls
/// Safra until global termination. Returns the sorted ids this rank
/// received; the harness checks the world-wide multiset.
fn storm_world(comm: &mut Comm, per_rank: u64) -> Vec<u64> {
    let size = comm.size();
    let rank = comm.rank();
    let mut abm: Abm<u64> = Abm::new(size, 3, 3);
    let mut term = Termination::new();
    let mut got: Vec<u64> = Vec::new();
    for i in 0..per_rank {
        let id = ((rank as u64) << 32) | i;
        let dst = (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % size;
        abm.post(comm, dst, id);
    }
    abm.flush_all(comm);
    term.on_send(abm.sent);
    let mut seen_sent = abm.sent;
    loop {
        let mut idle = true;
        for (_, batch) in abm.poll(comm) {
            term.on_recv(1);
            idle = false;
            got.extend(batch);
        }
        abm.flush_all(comm);
        if abm.sent > seen_sent {
            term.on_send(abm.sent - seen_sent);
            seen_sent = abm.sent;
            idle = false;
        }
        if idle && term.poll(comm) {
            break;
        }
    }
    got.sort_unstable();
    got
}

// ---------------------------------------------------------------------------
// Running + oracles
// ---------------------------------------------------------------------------

enum WorldResult {
    /// Per-rank digests (treecode worlds) or id-multiset digests (storm).
    Done {
        digests: Vec<u64>,
        trace: WorldTrace,
        /// Set when the storm world's delivered multiset differs from the
        /// posted multiset — an absolute exactly-once failure, flagged
        /// even on the reference schedule.
        delivery_error: Option<String>,
    },
    Stalled {
        rank: usize,
        at: f64,
        deadlock: bool,
    },
    Crashed {
        rank: usize,
        at: f64,
    },
}

fn run_world(
    cfg: &SimcheckConfig,
    world: World,
    seed: u64,
    schedule: u64,
    splan: &SchedPlan,
    replay: Option<(&ScheduleLog, usize)>,
) -> (WorldResult, ScheduleLog) {
    let machine = Machine::ideal(cfg.ranks as u32);
    let fplan = fault_plan(world, seed, schedule);
    let gcfg = GravityConfig {
        theta: 0.6,
        eps: 0.05,
        ..GravityConfig::default()
    };
    // The ICs depend only on the config, never the seed: physics must be
    // a constant of the whole sweep, which is itself an oracle (any
    // schedule- or fault-driven divergence breaks digest equality).
    let ics = golden_ics(cfg.bodies, 42);
    let per_rank = 12u64;
    let (outcome, trace, log) = match world {
        World::Treecode => {
            let body = |c: &mut Comm| treecode_world(c, &ics, &gcfg, cfg.steps, 0.01, None);
            match replay {
                None => run_with_schedule_observed(machine, cfg.ranks, splan, body),
                Some((log, prefix)) => {
                    replay_with_schedule_observed(machine, cfg.ranks, splan, log, prefix, body)
                }
            }
        }
        World::Overlap => {
            let body = |c: &mut Comm| overlap_world(c, &ics, &gcfg);
            match replay {
                None => run_with_schedule_observed(machine, cfg.ranks, splan, body),
                Some((log, prefix)) => {
                    replay_with_schedule_observed(machine, cfg.ranks, splan, log, prefix, body)
                }
            }
        }
        World::Chaos => {
            let body = |c: &mut Comm| treecode_world(c, &ics, &gcfg, cfg.steps, 0.01, None);
            let fp = fplan.as_ref().expect("chaos world has a fault plan");
            match replay {
                None => {
                    run_with_faults_and_schedule_observed(machine, cfg.ranks, fp, splan, 0.0, body)
                }
                Some((log, prefix)) => replay_with_faults_and_schedule_observed(
                    machine, cfg.ranks, fp, splan, 0.0, log, prefix, body,
                ),
            }
        }
        World::Degraded => {
            let drag = Some((cfg.ranks - 1, DRAG_S));
            let body = |c: &mut Comm| treecode_world(c, &ics, &gcfg, cfg.steps, 0.01, drag);
            let fp = fplan.as_ref().expect("degraded world has a fault plan");
            match replay {
                None => {
                    run_with_faults_and_schedule_observed(machine, cfg.ranks, fp, splan, 0.0, body)
                }
                Some((log, prefix)) => replay_with_faults_and_schedule_observed(
                    machine, cfg.ranks, fp, splan, 0.0, log, prefix, body,
                ),
            }
        }
        World::Queries => {
            let body = |c: &mut Comm| queries_world(c, &ics, cfg.steps);
            let (outcome, trace, log) = match replay {
                None => run_with_schedule_observed(machine, cfg.ranks, splan, body),
                Some((rlog, prefix)) => {
                    replay_with_schedule_observed(machine, cfg.ranks, splan, rlog, prefix, body)
                }
            };
            // Like the storm world, completion runs a world-specific
            // absolute oracle (exactly-once replies) on the raw returns
            // before collapsing them to digests.
            let outcome = match outcome {
                SchedOutcome::Completed(lists) => {
                    return (finish_queries(lists, trace), log);
                }
                SchedOutcome::Crashed { rank, at } => SchedOutcome::Crashed { rank, at },
                SchedOutcome::Stalled { rank, at, deadlock } => {
                    SchedOutcome::Stalled { rank, at, deadlock }
                }
            };
            (outcome, trace, log)
        }
        World::Storm => {
            let body = |c: &mut Comm| storm_world(c, per_rank);
            let fp = fplan.as_ref().expect("storm world has a fault plan");
            let (outcome, trace, log) = match replay {
                None => {
                    run_with_faults_and_schedule_observed(machine, cfg.ranks, fp, splan, 0.0, body)
                }
                Some((rlog, prefix)) => replay_with_faults_and_schedule_observed(
                    machine, cfg.ranks, fp, splan, 0.0, rlog, prefix, body,
                ),
            };
            // Collapse each rank's id list to a digest for uniform
            // handling; exactly-once is checked separately on the lists.
            let outcome = match outcome {
                SchedOutcome::Completed(lists) => {
                    return (finish_storm(cfg, per_rank, lists, trace), log);
                }
                SchedOutcome::Crashed { rank, at } => SchedOutcome::Crashed { rank, at },
                SchedOutcome::Stalled { rank, at, deadlock } => {
                    SchedOutcome::Stalled { rank, at, deadlock }
                }
            };
            (outcome, trace, log)
        }
    };
    let result = match outcome {
        SchedOutcome::Completed(digests) => WorldResult::Done {
            digests,
            trace: trace.expect("completed scheduled world always yields a trace"),
            delivery_error: None,
        },
        SchedOutcome::Stalled { rank, at, deadlock } => WorldResult::Stalled { rank, at, deadlock },
        SchedOutcome::Crashed { rank, at } => WorldResult::Crashed { rank, at },
    };
    (result, log)
}

/// Storm completion: check exactly-once *here* (it needs the raw id
/// lists), then hand back per-rank digests of the received multisets so
/// the generic physics-digest oracle also pins them across schedules.
fn finish_storm(
    cfg: &SimcheckConfig,
    per_rank: u64,
    lists: Vec<Vec<u64>>,
    trace: Option<WorldTrace>,
) -> WorldResult {
    let mut all: Vec<u64> = lists.iter().flatten().copied().collect();
    all.sort_unstable();
    let mut expect: Vec<u64> = (0..cfg.ranks as u64)
        .flat_map(|r| (0..per_rank).map(move |i| (r << 32) | i))
        .collect();
    expect.sort_unstable();
    let delivery_error = if all != expect {
        let lost = expect.iter().filter(|id| !all.contains(id)).count();
        Some(format!(
            "delivered multiset != posted multiset: {} delivered vs {} posted ({lost} lost, {} extra)",
            all.len(),
            expect.len(),
            all.len().saturating_sub(expect.len() - lost)
        ))
    } else {
        None
    };
    let digests = lists
        .iter()
        .map(|l| {
            let mut h = FNV_OFFSET;
            for id in l {
                h = fnv1a(h, &id.to_le_bytes());
            }
            h
        })
        .collect();
    WorldResult::Done {
        digests,
        trace: trace.expect("completed scheduled world always yields a trace"),
        delivery_error,
    }
}

/// Run the trace-analysis oracles on one schedule's trace.
fn check_trace(world: World, seed: u64, schedule: u64, trace: &WorldTrace) -> Vec<Violation> {
    let mut v = Vec::new();
    let mk = |oracle: &'static str, detail: String| Violation {
        world,
        seed,
        schedule,
        prefix: None,
        oracle,
        detail,
    };
    if let Err(e) = trace.check_invariants() {
        v.push(mk("trace-invariants", e));
        return v;
    }
    let cp = obs::critical_path(trace);
    let horizon = cp.t_end - cp.t_start;
    if (cp.total() - horizon).abs() > 1e-9 * horizon.max(1.0) {
        v.push(mk(
            "trace-invariants",
            format!(
                "critical path does not tile the horizon: path {} vs horizon {horizon}",
                cp.total()
            ),
        ));
    }
    let eff = obs::efficiency(trace, &cp);
    let factors = [
        ("parallel", eff.parallel_efficiency),
        ("load_balance", eff.load_balance),
        ("comm", eff.comm_efficiency),
        ("transfer", eff.transfer_efficiency),
        ("serialization", eff.serialization_efficiency),
    ];
    for (name, f) in factors {
        if !(0.0..=1.0 + 1e-12).contains(&f) {
            v.push(mk(
                "trace-invariants",
                format!("efficiency factor {name} out of [0,1]: {f}"),
            ));
        }
    }
    let lhs = eff.parallel_efficiency;
    let rhs = eff.load_balance * eff.transfer_efficiency * eff.serialization_efficiency;
    if (lhs - rhs).abs() > 1e-9 {
        v.push(mk(
            "trace-invariants",
            format!("factor identity broken: parallel {lhs} vs lb*tr*ser {rhs}"),
        ));
    }
    v
}

/// Budget for perturbed schedules: generous multiple of the reference
/// end time. Virtual, so it is stable across hosts; a schedule that
/// needs 10x the reference's virtual time is livelocked for this class
/// of world (jitter adds at most `jitter_s` per hop).
fn budget_for(reference: &Reference) -> f64 {
    10.0 * reference.end_vtime_s + 1.0e-2
}

fn run_reference(cfg: &SimcheckConfig, world: World, seed: u64) -> Result<Reference, Violation> {
    let splan = sched_plan(cfg, world, seed, 0);
    match run_world(cfg, world, seed, 0, &splan, None).0 {
        WorldResult::Done {
            digests,
            trace,
            delivery_error,
        } => {
            if let Some(detail) = delivery_error {
                return Err(Violation {
                    world,
                    seed,
                    schedule: 0,
                    prefix: None,
                    oracle: "exactly-once",
                    detail,
                });
            }
            Ok(Reference {
                digests,
                trace_digest: obs::schedule_digest(&trace),
                end_vtime_s: trace.end_time(),
            })
        }
        WorldResult::Stalled { rank, at, deadlock } => Err(Violation {
            world,
            seed,
            schedule: 0,
            prefix: None,
            oracle: "liveness",
            detail: format!(
                "reference schedule stalled: rank {rank} at t={at:.6} ({})",
                if deadlock { "deadlock" } else { "budget" }
            ),
        }),
        WorldResult::Crashed { rank, at } => Err(Violation {
            world,
            seed,
            schedule: 0,
            prefix: None,
            oracle: "liveness",
            detail: format!("reference schedule crashed: rank {rank} at t={at:.6}"),
        }),
    }
}

/// Check one perturbed schedule against the reference. `replay` of `None`
/// runs the schedule live (adversarial permutation, recording its
/// decisions); [`shrink`] passes `Some((log, prefix))` to force the first
/// `prefix` recorded decisions back. Returns the violations plus the
/// decision log the run produced (recorded live, or re-logged under
/// replay).
fn check_schedule(
    cfg: &SimcheckConfig,
    world: World,
    seed: u64,
    schedule: u64,
    reference: &Reference,
    replay: Option<(&ScheduleLog, usize)>,
) -> (Vec<Violation>, ScheduleLog) {
    let splan = sched_plan(cfg, world, seed, schedule).with_budget(budget_for(reference));
    let prefix = replay.map(|(_, p)| p);
    let mk = |oracle: &'static str, detail: String| Violation {
        world,
        seed,
        schedule,
        prefix,
        oracle,
        detail,
    };
    let (result, log) = run_world(cfg, world, seed, schedule, &splan, replay);
    let violations = match result {
        WorldResult::Done {
            digests,
            trace,
            delivery_error,
        } => {
            let mut v = Vec::new();
            if let Some(detail) = delivery_error {
                v.push(mk("exactly-once", detail));
            }
            if digests != reference.digests {
                let oracle = if world == World::Storm {
                    "exactly-once"
                } else {
                    "physics"
                };
                let diff: Vec<usize> = (0..digests.len())
                    .filter(|&r| digests[r] != reference.digests[r])
                    .collect();
                v.push(mk(
                    oracle,
                    format!("per-rank digests diverged from reference on ranks {diff:?}"),
                ));
            }
            // Token traffic in the storm world and batch/flush structure
            // in the overlap world are schedule-dependent by design (an
            // unlucky token round just relaunches; a jittered reply moves
            // a deadline flush), so the structural digest is only pinned
            // for the replicated-physics worlds. The degraded world is
            // likewise exempt: heartbeat emission and suspicion traffic
            // ride the wall-clock poll loop, so health counters and
            // retraction rounds differ run to run by design — its binding
            // oracles are physics and the withheld-verdict liveness.
            if !matches!(world, World::Storm | World::Overlap | World::Degraded) {
                let d = obs::schedule_digest(&trace);
                if d != reference.trace_digest {
                    v.push(mk(
                        "structure",
                        format!(
                            "schedule digest {d:#018x} != reference {:#018x}",
                            reference.trace_digest
                        ),
                    ));
                }
            }
            v.extend(check_trace(world, seed, schedule, &trace));
            v
        }
        WorldResult::Stalled { rank, at, deadlock } => vec![mk(
            "liveness",
            format!(
                "rank {rank} stalled at t={at:.6} ({})",
                if deadlock {
                    "deadlock: every rank parked with nothing in flight"
                } else {
                    "virtual-time budget exceeded"
                }
            ),
        )],
        WorldResult::Crashed { rank, at } => vec![mk(
            "liveness",
            format!("rank {rank} crashed at t={at:.6} with no crash scheduled"),
        )],
    };
    (violations, log)
}

/// Run every world and every schedule for one seed; returns all oracle
/// violations found (empty = the seed is clean).
pub fn check_seed(cfg: &SimcheckConfig, seed: u64) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut physics: Option<Vec<u64>> = None;
    for world in World::ALL {
        let reference = match run_reference(cfg, world, seed) {
            Ok(r) => r,
            Err(v) => {
                out.push(v);
                continue;
            }
        };
        // Cross-world oracle: the chaos and degraded worlds run the *same
        // physics* as the fault-free treecode, so their reference digests
        // must agree — neither delivery through duplicates and reordering
        // nor a straggler's suspicion storms may change the answer.
        match world {
            World::Treecode => physics = Some(reference.digests.clone()),
            World::Chaos | World::Degraded => {
                if let Some(expect) = &physics {
                    if &reference.digests != expect {
                        out.push(Violation {
                            world,
                            seed,
                            schedule: 0,
                            prefix: None,
                            oracle: "physics",
                            detail: "faulted world's physics diverged from fault-free world"
                                .to_string(),
                        });
                    }
                }
            }
            World::Storm | World::Overlap | World::Queries => {}
        }
        for schedule in 1..=cfg.schedules {
            out.extend(check_schedule(cfg, world, seed, schedule, &reference, None).0);
        }
    }
    out
}

/// Minimize a violation. The failing `(world, seed, schedule)` triple is
/// first re-run live to reproduce the failure and record its wildcard
/// decision log; the log is then replayed with a geometrically growing
/// per-rank decision *prefix* — each rank follows its first `L` recorded
/// picks and falls back to first-match delivery after — and the first
/// prefix that still trips any oracle is returned on the re-labeled
/// violation. Returns `None` if the failure did not reproduce on the
/// fresh recording (a flaky environment bug — worth its own alarm); if
/// it reproduced live but no replay prefix trips (possible in the fault
/// worlds, where retransmit timers re-race around the forced decisions),
/// the recorded violation is returned unshrunk with `prefix = None`.
pub fn shrink(cfg: &SimcheckConfig, v: &Violation) -> Option<Violation> {
    let reference = run_reference(cfg, v.world, v.seed).ok()?;
    let (recorded, log) = check_schedule(cfg, v.world, v.seed, v.schedule, &reference, None);
    let first = recorded.into_iter().next()?;
    let max = log.max_decisions();
    let mut prefixes: Vec<usize> = vec![0];
    let mut l = 1usize;
    while l < max {
        prefixes.push(l);
        l *= 2;
    }
    prefixes.push(max);
    for prefix in prefixes {
        let (found, _) = check_schedule(
            cfg,
            v.world,
            v.seed,
            v.schedule,
            &reference,
            Some((&log, prefix)),
        );
        if let Some(min) = found.into_iter().next() {
            return Some(Violation {
                prefix: Some(prefix),
                ..min
            });
        }
    }
    Some(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-friendly configuration for the module tests; CI runs
    /// the release binary at the default size.
    fn small() -> SimcheckConfig {
        SimcheckConfig {
            ranks: 8,
            bodies: 48,
            steps: 2,
            schedules: 1,
            jitter_s: 2.0e-5,
        }
    }

    #[test]
    fn clean_sweep_over_a_few_seeds() {
        let cfg = small();
        for seed in 0..3u64 {
            let violations = check_seed(&cfg, seed);
            assert!(
                violations.is_empty(),
                "seed {seed} produced violations:\n{}",
                violations
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn replay_is_deterministic() {
        // Record an adversarial schedule, then replay its decision log:
        // digests and the schedule-invariant trace digest must match the
        // recording for every world. For the fault-free world the replay
        // is bit-exact — same decision log back out, same virtual end
        // time to the bit. (The fault worlds re-race their retransmit
        // timers around the forced decisions, so only decision-determined
        // content is pinned there.)
        let cfg = small();
        for world in World::ALL {
            if world == World::Overlap {
                // The overlap world runs the real deferred-walk engine,
                // whose message *structure* (ABM batch boundaries,
                // deadline flushes, coalesced requests) is wall-timing-
                // dependent by design — a recorded source sequence is not
                // a faithful encoding of its execution, and a full-log
                // replay can wait forever on a forced source whose batch
                // never re-forms. Shrink still works there through prefix
                // replays with free-choice fallback; the binding oracle
                // is the schedule-independent physics digest, which
                // `clean_sweep_over_a_few_seeds` checks across jittered
                // schedules.
                continue;
            }
            let reference = run_reference(&cfg, world, 7).expect("reference completes");
            let splan = sched_plan(&cfg, world, 7, 1).with_budget(budget_for(&reference));
            let (rec, log) = run_world(&cfg, world, 7, 1, &splan, None);
            let WorldResult::Done {
                digests: rec_digests,
                trace: rec_trace,
                ..
            } = rec
            else {
                panic!("{} recording did not complete", world.name());
            };
            let (rep, relog) = run_world(&cfg, world, 7, 1, &splan, Some((&log, usize::MAX)));
            let WorldResult::Done {
                digests: rep_digests,
                trace: rep_trace,
                ..
            } = rep
            else {
                panic!("{} replay did not complete", world.name());
            };
            assert_eq!(
                rep_digests,
                rec_digests,
                "{} digests drifted under replay",
                world.name()
            );
            if world != World::Degraded {
                // The degraded world's trace structure is wall-timing-
                // dependent (heartbeat cadence rides the poll loop), so
                // only its physics digests are pinned under replay.
                assert_eq!(
                    obs::schedule_digest(&rep_trace),
                    obs::schedule_digest(&rec_trace),
                    "{} trace digest drifted under replay",
                    world.name()
                );
            }
            if world == World::Treecode {
                assert_eq!(relog, log, "treecode replay re-logged different decisions");
                assert_eq!(
                    rep_trace.end_time().to_bits(),
                    rec_trace.end_time().to_bits(),
                    "treecode replay end time not bit-exact"
                );
            }
        }
    }

    /// Mutation tooth for the failure detector's confirmation window: a
    /// detector that condemns the instant a quorum of suspicion votes
    /// lines up (`condemn_unconfirmed`, the split-brain mutant) turns the
    /// degraded world's per-step suspicion storm into a false verdict —
    /// the straggler's clock jump makes every survivor suspect every
    /// other at the same sync point, and the votes land before the
    /// retractions. The simcheck seed set must catch this as a liveness
    /// violation (an unscheduled crash) on at least one seed; the healthy
    /// detector sails through the same seeds via `clean_sweep`.
    #[test]
    fn degraded_world_catches_split_brain_mutant() {
        let cfg = small();
        let gcfg = GravityConfig {
            theta: 0.6,
            eps: 0.05,
            ..GravityConfig::default()
        };
        let ics = golden_ics(cfg.bodies, 42);
        let mutant = msg::HeartbeatConfig {
            condemn_unconfirmed: true,
            ..Default::default()
        };
        let mut caught = false;
        for seed in 0..8u64 {
            for schedule in 0..=cfg.schedules {
                let splan = sched_plan(&cfg, World::Degraded, seed, schedule);
                let fplan =
                    FaultPlan::none(mix(World::Degraded, seed, schedule) ^ 0xFA17_0000_0000_0002)
                        .with_heartbeat(mutant.clone());
                let drag = Some((cfg.ranks - 1, DRAG_S));
                let body = |c: &mut Comm| treecode_world(c, &ics, &gcfg, cfg.steps, 0.01, drag);
                let (outcome, _, _) = run_with_faults_and_schedule_observed(
                    Machine::ideal(cfg.ranks as u32),
                    cfg.ranks,
                    &fplan,
                    &splan,
                    0.0,
                    body,
                );
                if matches!(outcome, SchedOutcome::Crashed { .. }) {
                    caught = true;
                    break;
                }
            }
            if caught {
                break;
            }
        }
        assert!(
            caught,
            "split-brain mutant survived the simcheck seed set: no false verdict observed"
        );
    }

    #[test]
    fn perturbed_schedules_really_differ_from_reference() {
        // Sanity that the harness is not vacuous: a perturbed schedule
        // must actually change the execution (otherwise every oracle
        // passes trivially). Digest equality IS the oracle, so instead
        // check the jittered schedule's virtual end time moves relative
        // to the reference — the scheduler is really in the loop.
        let cfg = small();
        let r0 = run_reference(&cfg, World::Treecode, 3).expect("completes");
        let splan = sched_plan(&cfg, World::Treecode, 3, 1).with_budget(budget_for(&r0));
        match run_world(&cfg, World::Treecode, 3, 1, &splan, None).0 {
            WorldResult::Done { digests, trace, .. } => {
                assert_eq!(digests, r0.digests, "physics must not move");
                assert!(
                    (trace.end_time() - r0.end_vtime_s).abs() > 0.0,
                    "jittered schedule has identical end time — scheduler inert?"
                );
            }
            other => panic!(
                "perturbed schedule did not complete: {:?}",
                match other {
                    WorldResult::Stalled { rank, at, deadlock } =>
                        format!("stalled rank {rank} at {at} deadlock={deadlock}"),
                    WorldResult::Crashed { rank, at } => format!("crashed rank {rank} at {at}"),
                    WorldResult::Done { .. } => unreachable!(),
                }
            ),
        }
    }
}
