//! The treecode throughput model (Table 6) and small-scale validation
//! runs on the virtual-time message-passing layer.
//!
//! The model: per-processor treecode Mflop/s = gravity-kernel rate ×
//! step efficiency, where the efficiency accounts for the non-force
//! phases (tree build, domain decomposition, moments — charged as a
//! fixed fraction calibrated once on the Space Simulator row) and the
//! communication time of the request traffic through the machine's
//! network profile.

use crate::machines::MachineSpec;
use hot::models;
use hot::parallel::{parallel_accelerations, ParallelConfig};

/// Fraction of a timestep spent outside the force inner loop (tree
/// build, decomposition, moments). Calibrated once so the Space
/// Simulator row of Table 6 reproduces; every other machine is then a
/// prediction.
pub const NON_FORCE_FRACTION: f64 = 0.15;

/// Mean interactions per particle for the production accuracy settings
/// (θ ≈ 0.6, quadrupoles), measured from our own traversal.
pub const INTERACTIONS_PER_PARTICLE: f64 = 250.0;

/// Flops per interaction (the paper's counting).
pub const FLOPS_PER_INTERACTION: f64 = 38.0;

/// Cell-fetch traffic per particle per step, bytes (requests + replies,
/// amortized; batched into ~4 kB messages).
pub const COMM_BYTES_PER_PARTICLE: f64 = 60.0;
const BATCH_BYTES: usize = 4096;

/// Predicted treecode performance of `machine` running `n_particles`
/// on `procs` processors: `(total Gflop/s, Mflops/proc)`.
pub fn treecode_model(machine: &MachineSpec, procs: u32, n_particles: f64) -> (f64, f64) {
    let n_per = n_particles / procs as f64;
    let kernel_mflops = machine.cpu.best_mflops();
    // Force phase.
    let flops_per_proc = n_per * INTERACTIONS_PER_PARTICLE * FLOPS_PER_INTERACTION;
    let t_force = flops_per_proc / (kernel_mflops * 1e6);
    // Non-force phases.
    let t_other = t_force * NON_FORCE_FRACTION / (1.0 - NON_FORCE_FRACTION);
    // Communication: batched cell traffic through the profile.
    let bytes = n_per * COMM_BYTES_PER_PARTICLE * (procs as f64).ln().max(1.0) / 8.0;
    let msgs = (bytes / BATCH_BYTES as f64).ceil();
    let t_comm = msgs * machine.profile.transfer_time(BATCH_BYTES);
    let t_step = t_force + t_other + t_comm;
    let mflops_per_proc = flops_per_proc / t_step / 1e6;
    let total_gflops = mflops_per_proc * procs as f64 / 1e3;
    (total_gflops, mflops_per_proc)
}

/// The Table 6 problem size the paper ran (a fixed per-proc load keeps
/// the comparison fair across machine sizes; the paper used the same
/// spherical problem scaled to each machine).
pub fn table6_particles(procs: u32) -> f64 {
    procs as f64 * 200_000.0
}

/// Regenerate Table 6: `(name, procs, model Gflop/s, model Mflops/proc,
/// paper Gflop/s, paper Mflops/proc)`.
pub fn table6() -> Vec<(&'static str, u32, f64, f64, f64, f64)> {
    MachineSpec::table6_machines()
        .into_iter()
        .zip(MachineSpec::table6_paper_values())
        .map(|((m, procs), (name, paper_total, paper_per))| {
            let (total, per) = treecode_model(&m, procs, table6_particles(procs));
            (name, procs, total, per, paper_total, paper_per)
        })
        .collect()
}

/// Actually run the distributed treecode on the virtual-time layer with
/// `procs` ranks on the given machine; returns measured
/// `(Mflops/proc, max virtual step time)`. Small scales only (ranks are
/// host threads).
pub fn measured_run(machine: &MachineSpec, procs: usize, n_particles: usize) -> (f64, f64) {
    let (mflops, t, _) = measured_run_impl(machine, procs, n_particles, false);
    (mflops, t)
}

/// [`measured_run`] with the observability layer switched on: every rank
/// records `hot.decompose` / `hot.tree_build` / `hot.walk` spans plus
/// message and walk counters, and the merged world trace is returned
/// alongside the measurement.
///
/// The HOT walk services cell requests in wall-clock arrival order, so
/// traces from this entry point are faithful but not run-to-run
/// byte-stable; use [`crate::chaos::run_treecode_traced`] on a
/// fault-free plan for golden-trace comparisons.
pub fn measured_run_traced(
    machine: &MachineSpec,
    procs: usize,
    n_particles: usize,
) -> (f64, f64, obs::WorldTrace) {
    let (mflops, t, trace) = measured_run_impl(machine, procs, n_particles, true);
    (mflops, t, trace.expect("traced run always yields a trace"))
}

fn measured_run_impl(
    machine: &MachineSpec,
    procs: usize,
    n_particles: usize,
    traced: bool,
) -> (f64, f64, Option<obs::WorldTrace>) {
    let msg_machine = match machine.fabric {
        crate::machines::FabricKind::SpaceSimulatorSwitch => {
            msg::Machine::space_simulator(machine.profile)
        }
        crate::machines::FabricKind::Crossbar => msg::Machine::new(
            nodesim::NodeModel::space_simulator(),
            netsim::Fabric::ideal(procs.max(2) as u32, machine.profile),
        ),
    };
    let bodies = models::plummer(n_particles, 12345);
    let cpu_eff = machine.cpu.best_mflops() * 1e6 / 5.06e9;
    let world = |comm: &mut msg::Comm| {
        let mine: Vec<hot::Body> = bodies
            .iter()
            .enumerate()
            .filter(|(i, _)| i % comm.size() == comm.rank())
            .map(|(_, b)| *b)
            .collect();
        let cfg = ParallelConfig {
            cpu_eff,
            ..Default::default()
        };
        let r = parallel_accelerations(comm, mine, &cfg);
        (r.stats.flops(true), r.vtime)
    };
    let (results, trace) = if traced {
        let (results, trace) = msg::run_observed(msg_machine, procs, world);
        (results, Some(trace))
    } else {
        (msg::run_with(msg_machine, procs, world), None)
    };
    let total_flops: f64 = results.iter().map(|(f, _)| f).sum();
    let t = results.iter().map(|(_, t)| *t).fold(0.0, f64::max);
    (total_flops / t / 1e6 / procs as f64, t, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_simulator_row_is_calibrated() {
        let ss = MachineSpec::space_simulator();
        let (total, per) = treecode_model(&ss, 288, table6_particles(288));
        // Paper: 179.7 Gflop/s, 623.9 Mflops/proc.
        assert!((per - 623.9).abs() / 623.9 < 0.05, "per-proc {per}");
        assert!((total - 179.7).abs() / 179.7 < 0.05, "total {total}");
    }

    #[test]
    fn table6_shape_holds() {
        let rows = table6();
        for (name, _, total, per, paper_total, paper_per) in &rows {
            // Factor-of-2 agreement per row is the target for a model
            // with one calibrated constant.
            let rt = total / paper_total;
            let rp = per / paper_per;
            assert!(
                rt > 0.45 && rt < 2.2,
                "{name}: total {total} vs paper {paper_total}"
            );
            assert!(
                rp > 0.45 && rp < 2.2,
                "{name}: per-proc {per} vs paper {paper_per}"
            );
        }
        // Ordering claims the paper makes: ASCI QB fastest in total;
        // SS per-proc close behind QB and far ahead of the 1996 crowd.
        let total_of = |n: &str| rows.iter().find(|r| r.0 == n).unwrap().2;
        let per_of = |n: &str| rows.iter().find(|r| r.0 == n).unwrap().3;
        assert!(total_of("ASCI QB") > total_of("Space Simulator"));
        assert!(total_of("Space Simulator") > total_of("IBM SP-3(375/W)"));
        assert!(per_of("Space Simulator") > 4.0 * per_of("Loki"));
    }

    #[test]
    fn whole_ss_comparable_to_256_procs_of_asci_q() {
        // §4.2: "the performance of the full Space Simulator cluster is
        // similar to that of 256 processors on ASCI Q".
        let ss = treecode_model(&MachineSpec::space_simulator(), 288, table6_particles(288)).0;
        let q256 = treecode_model(&MachineSpec::asci_qb(), 256, table6_particles(256)).0;
        let ratio = ss / q256;
        assert!(ratio > 0.6 && ratio < 1.6, "SS/Q256 = {ratio}");
    }

    #[test]
    fn measured_small_run_is_in_the_model_ballpark() {
        let ss = MachineSpec::space_simulator();
        let (mflops_per_proc, t) = measured_run(&ss, 4, 2000);
        assert!(t > 0.0);
        // The small-N measured rate carries more per-step overhead than
        // the production model; just demand the right magnitude.
        assert!(
            mflops_per_proc > 50.0 && mflops_per_proc < 2000.0,
            "measured {mflops_per_proc} Mflops/proc"
        );
    }

    #[test]
    fn gigabit_beats_fast_ethernet_at_scale() {
        // Same CPU, different network: the GigE machine should hold its
        // per-proc rate better at 288 procs.
        let ss = MachineSpec::space_simulator();
        let mut slow = ss.clone();
        slow.profile = netsim::LibraryProfile::fast_ethernet();
        let (_, fast_per) = treecode_model(&ss, 288, table6_particles(288));
        let (_, slow_per) = treecode_model(&slow, 288, table6_particles(288));
        assert!(fast_per > slow_per, "{fast_per} vs {slow_per}");
    }
}

/// SPH supernova-code performance model (§4.4). The paper: "For our 1
/// million particle simulations on 128 processors, per processor
/// performance (using gcc/g77) is about 1/2 that of the ASCI Q system
/// on an equivalent number of processors. ... Performance tuning
/// remains to be done, especially investigating the use of the Intel
/// 7.0 compilers."
///
/// Model: per-proc rate = the machine's *libm* kernel rate (SPH is full
/// of sqrt/divides and was not Karp-optimized) × an untuned-compiler
/// factor on x86 (gcc's x87 codegen; Table 5 shows icc is 1.7× gcc on
/// the P4, while the Alpha compilers were already mature) × a step
/// efficiency with heavier non-force phases (neighbour finding, EOS)
/// and ghost-exchange communication.
pub fn sph_model(machine: &MachineSpec, procs: u32, n_particles: f64) -> (f64, f64) {
    let n_per = n_particles / procs as f64;
    let untuned = if machine.cpu.name.contains("P4") {
        0.65 // gcc/g77 on the P4's x87 stack
    } else {
        1.0
    };
    let kernel_mflops = machine.cpu.libm_mflops() * untuned;
    // ~120 neighbour interactions per particle, ~250 flops each
    // (kernel + gradient + viscosity + FLD).
    let flops_per_proc = n_per * 120.0 * 250.0;
    let t_force = flops_per_proc / (kernel_mflops * 1e6);
    // SPH spends more outside the pair loop than gravity does.
    let t_other = t_force * 0.3 / 0.7;
    // Two ghost exchanges per step, ~15% of particles × 152 bytes.
    let ghost_bytes = 2.0 * n_per * 0.15 * 152.0;
    let msgs = (ghost_bytes / 4096.0).ceil();
    let t_comm = msgs * machine.profile.transfer_time(4096);
    let t_step = t_force + t_other + t_comm;
    let mflops = flops_per_proc / t_step / 1e6;
    (mflops * procs as f64 / 1e3, mflops)
}

#[cfg(test)]
mod sph_model_tests {
    use super::*;

    #[test]
    fn ss_is_about_half_of_q_per_processor() {
        // The §4.4 claim, at the paper's own configuration: 1M particles
        // on 128 processors of each machine.
        let (_, ss) = sph_model(&MachineSpec::space_simulator(), 128, 1.0e6);
        let (_, q) = sph_model(&MachineSpec::asci_qb(), 128, 1.0e6);
        let ratio = ss / q;
        assert!(
            ratio > 0.4 && ratio < 0.65,
            "SS/Q per-proc SPH ratio {ratio} (paper: ~0.5)"
        );
    }

    #[test]
    fn icc_tuning_would_close_the_gap() {
        // With the icc kernel rates (Table 5's last row) the same model
        // puts the SS much closer to Q — the tuning §4.4 anticipates.
        let mut tuned = MachineSpec::space_simulator();
        tuned.cpu = nodesim::cpu_models::space_simulator_cpu_icc();
        let (_, ss_tuned) = sph_model(&tuned, 128, 1.0e6);
        let (_, q) = sph_model(&MachineSpec::asci_qb(), 128, 1.0e6);
        assert!(ss_tuned / q > 0.75, "tuned ratio {}", ss_tuned / q);
    }

    #[test]
    fn sph_runs_slower_than_gravity_per_processor() {
        let (_, sph) = sph_model(&MachineSpec::space_simulator(), 128, 1.0e6);
        let (_, grav) = treecode_model(&MachineSpec::space_simulator(), 128, 128.0 * 200_000.0);
        assert!(sph < grav, "SPH {sph} vs gravity {grav}");
    }
}
