//! Run production physics *through* hardware failures (§2.1).
//!
//! The paper's operating argument is that a 294-node commodity cluster
//! is productive not because nothing breaks — Table 1 budgets for DIMMs,
//! fans, power supplies and switch ports dying — but because the system
//! *recovers*: soft errors are retried by the transport, dead nodes are
//! rebooted, and the job restarts from its last checkpoint. This module
//! closes that loop on the simulated machine: a distributed treecode
//! stepping loop runs under an injected [`FaultPlan`], commits periodic
//! [`ckpt`] snapshots to stable storage (charged at the Figure 7 local-
//! disk I/O rate), and when the world dies the harness restores the last
//! commit and re-runs — accounting every virtual second lost to the
//! crash and every one spent rebooting and re-reading the checkpoint.
//!
//! The physics is replicated across ranks (every rank integrates the
//! full body set) but each rank *owns* one stripe of the acceleration
//! array: after the force phase the stripes are allgathered and every
//! replica overwrites its own values with the received ones. Delivery
//! integrity is therefore load-bearing — a dropped, duplicated or
//! corrupted stripe that the reliable transport failed to repair would
//! diverge the replicas and change the answer. "Same physics as the
//! fault-free run" really does certify the recovery machinery.

use crate::io::IoModel;
use ckpt::{CkptError, Pack};
use hot::gravity::{Accel, GravityConfig};
use hot::traverse::group_accelerations;
use hot::tree::{Body, Tree};
use msg::{run_with_faults, run_with_faults_observed, Comm, FaultPlan, Machine, WorldOutcome};
use std::sync::Mutex;
use store::{GenerationLog, RecordKind, StoreConfig};

/// Aux lanes a degraded-mode shard carries alongside each body: the
/// acceleration vector plus the potential — the full integrator state a
/// failed-over rank needs to resume mid-KDK.
const N_AUX: usize = 4;

/// Flatten a stripe's `Accel` values into the store's row-major aux lanes.
fn aux_of(accel: &[Accel]) -> Vec<f64> {
    let mut v = Vec::with_capacity(accel.len() * N_AUX);
    for a in accel {
        v.extend_from_slice(&a.acc);
        v.push(a.pot);
    }
    v
}

/// Rebuild `Accel` values from the store's aux lanes.
fn accel_of(aux: &[f64]) -> Vec<Accel> {
    aux.chunks_exact(N_AUX)
        .map(|c| Accel {
            acc: [c[0], c[1], c[2]],
            pot: c[3],
        })
        .collect()
}

/// Knobs of the checkpoint/restart loop (times are virtual seconds).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Steps between checkpoint commits.
    pub checkpoint_every: u64,
    /// Reboot + relaunch dead time charged on every restart, on top of
    /// re-reading the checkpoint. A node power-cycle plus job relaunch
    /// on the real machine is minutes; the default keeps test runs short
    /// while staying much larger than a step time.
    pub restart_penalty_s: f64,
    /// Failover dead time for a degraded-mode recovery: reassign the
    /// condemned rank to a spare node and restore *its* shard while the
    /// survivors hold at the last commit. Much smaller than a
    /// whole-world restart — that asymmetry is the point of sharding.
    pub failover_penalty_s: f64,
    /// Give up after this many attempts (a plan can be lethal, e.g. a
    /// crash scheduled before the first commit plus a zero horizon).
    pub max_attempts: usize,
    /// Give up after this many *consecutive* recoveries that resumed
    /// from the same commit (zero forward progress). An attacker
    /// scheduling crashes faster than the checkpoint cadence would
    /// otherwise burn all of `max_attempts` replaying the identical
    /// doomed interval.
    pub max_futile_attempts: usize,
    /// Fraction of peak the force kernel sustains (virtual-time model).
    pub cpu_eff: f64,
    /// Arm the time-resolved telemetry plane (`obs::timeline`) with this
    /// window width on every observed rank. `None` (the default) records
    /// end-of-run aggregates only.
    pub timeline_window_s: Option<f64>,
    /// Test hook modeling at-rest bit rot: after the shard generation at
    /// this step is committed, one byte of this `(rank, step)`'s shard
    /// flips on "disk", to be discovered by the next recovery's decode.
    #[cfg(test)]
    pub corrupt_shard: Option<(usize, u64)>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            checkpoint_every: 4,
            restart_penalty_s: 5.0,
            failover_penalty_s: 0.5,
            max_attempts: 8,
            max_futile_attempts: 3,
            cpu_eff: 790.0 / 5060.0, // P4/gcc gravity micro-kernel
            timeline_window_s: None,
            #[cfg(test)]
            corrupt_shard: None,
        }
    }
}

/// What the run-through-failures harness measured.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// World launches (1 = no restart was needed).
    pub attempts: usize,
    /// Restarts after a crash (`attempts - 1` when the run completed).
    pub restarts: usize,
    /// Whether the job finished within `max_attempts`.
    pub completed: bool,
    /// Absolute virtual time at job completion (includes all lost work
    /// and restart overhead).
    pub final_vtime: f64,
    /// Virtual seconds of computed-but-uncommitted work destroyed by
    /// crashes (crash time minus last commit, summed over restarts).
    pub lost_vtime: f64,
    /// Virtual seconds spent rebooting and restoring checkpoints.
    pub restart_overhead_s: f64,
    /// `1 - (lost + overhead) / final_vtime`: the fraction of the
    /// cluster-time the job paid for that produced kept physics.
    pub availability: f64,
    /// Checkpoint commits that reached stable storage.
    pub commits: u64,
    /// Size of one checkpoint on disk (degraded mode: sum of all shards
    /// in the newest complete generation).
    pub checkpoint_bytes: usize,
    /// Degraded-mode recoveries: a condemned rank restored from its own
    /// shard while the survivors rolled back in place (no world restart).
    pub shard_recoveries: u64,
    /// Virtual seconds spent failing over condemned ranks from shards.
    pub shard_recovery_overhead_s: f64,
    /// Size of one rank's shard in the newest complete generation.
    pub shard_bytes: usize,
    /// Recoveries that found a rotten shard in the newest generation and
    /// fell back to the previous complete commit instead of crashing.
    pub shard_fallbacks: u64,
    /// Store-record bytes actually shipped at commit time across promoted
    /// generations (first commit per attempt is full, the rest are
    /// dirty-cell deltas).
    pub store_commit_bytes: u64,
    /// What the same promoted generations cost as full columnar records
    /// — the incremental-commit savings are `full - commit`.
    pub store_full_bytes: u64,
    /// Why the harness gave up (`None` while healthy or completed).
    pub diagnosis: Option<String>,
    /// Injected-fault and recovery traffic, summed over ranks of the
    /// final (successful) attempt.
    pub drops: u64,
    pub corruptions: u64,
    pub duplicates: u64,
    pub reorders: u64,
    pub retransmits: u64,
    pub acks: u64,
}

/// Integrator state at a step boundary, as committed to stable storage.
struct State {
    step: u64,
    time: f64,
    bodies: Vec<Body>,
    accel: Vec<Accel>,
}

fn encode_state(step: u64, time: f64, bodies: &[Body], accel: &[Accel]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + bodies.len() * 96);
    out.extend_from_slice(&ckpt::MAGIC);
    step.pack(&mut out);
    time.pack(&mut out);
    // Same wire shape as `Vec<T>::pack` (length prefix + elements),
    // without cloning the arrays.
    bodies.len().pack(&mut out);
    for b in bodies {
        b.pack(&mut out);
    }
    accel.len().pack(&mut out);
    for a in accel {
        a.pack(&mut out);
    }
    let crc = ckpt::crc32(&out[ckpt::MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_state(bytes: &[u8]) -> Result<State, CkptError> {
    let ((step, time), (bodies, accel)): ((u64, f64), (Vec<Body>, Vec<Accel>)) = ckpt::load(bytes)?;
    if bodies.len() != accel.len() {
        return Err(CkptError::BadEncoding("accel/bodies length mismatch"));
    }
    Ok(State {
        step,
        time,
        bodies,
        accel,
    })
}

/// The index range of the acceleration stripe rank `r` owns.
fn stripe(n: usize, size: usize, r: usize) -> std::ops::Range<usize> {
    (r * n / size)..((r + 1) * n / size)
}

/// One complete per-rank shard generation in stable storage: `of_ranks`
/// crc-framed fragments that together hold the integrator state at
/// `step`. Two generations are retained so a shard discovered rotten at
/// recovery time falls back to the previous complete commit.
/// One rank's shard as logged from inside the faulted world:
/// `(step, commit vtime, rank, crc-framed bytes)`.
type ShardCommit = (u64, f64, usize, Vec<u8>);

/// A possibly-incomplete generation being reassembled from the log:
/// one `(commit vtime, bytes)` slot per rank.
type ShardSlots = Vec<Option<(f64, Vec<u8>)>>;

struct Gen {
    step: u64,
    /// Virtual commit time (max over ranks; the commit barrier keeps the
    /// spread to one barrier's skew).
    vtime: f64,
    shards: Vec<Vec<u8>>,
}

/// Cut a full replica state into per-rank shard files: each shard frames
/// a full columnar store record of that rank's stripe (bodies plus the
/// [`N_AUX`] acceleration lanes) behind a [`ckpt::ShardHeader`].
fn encode_shards(
    step: u64,
    time: f64,
    bodies: &[Body],
    accel: &[Accel],
    size: usize,
) -> Vec<Vec<u8>> {
    (0..size)
        .map(|r| {
            let range = stripe(bodies.len(), size, r);
            let mut log = GenerationLog::new(StoreConfig::default(), N_AUX as u32);
            let record = log
                .commit(step, &bodies[range.clone()], &aux_of(&accel[range]))
                .to_vec();
            ckpt::save_shard(
                &ckpt::ShardHeader {
                    rank: r as u32,
                    of_ranks: size as u32,
                    step,
                    time,
                },
                &record,
            )
        })
        .collect()
}

/// Decode and reassemble a generation's shards into a full replica state.
/// `None` if any fragment is rotten or the set is not one coherent
/// generation (mixed steps, worlds or commit times) — the caller falls
/// back to an older generation. Promoted shards always hold full store
/// records, so each materializes from its own bytes alone.
fn assemble(gen: &Gen, size: usize) -> Option<State> {
    let mut decoded = Vec::with_capacity(size);
    for bytes in &gen.shards {
        let (h, record): (ckpt::ShardHeader, Vec<u8>) = ckpt::load_shard(bytes).ok()?;
        decoded.push((h, record));
    }
    let headers: Vec<ckpt::ShardHeader> = decoded.iter().map(|(h, _)| *h).collect();
    ckpt::validate_shard_headers(&headers, size).ok()?;
    if headers[0].step != gen.step {
        return None;
    }
    let mut bodies = Vec::new();
    let mut accel = Vec::new();
    for (r, (h, record)) in decoded.into_iter().enumerate() {
        if h.rank != r as u32 {
            return None;
        }
        let snap = store::log::materialize_records(&[(h.step, record)], h.step).ok()?;
        let (b, aux) = snap.decode_all().ok()?;
        if aux.len() != b.len() * N_AUX {
            return None;
        }
        bodies.extend(b);
        accel.extend(accel_of(&aux));
    }
    Some(State {
        step: gen.step,
        time: headers[0].time,
        bodies,
        accel,
    })
}

/// Run an `nranks`-way treecode for `steps` KDK steps of `dt` under the
/// given fault plan, checkpointing and restarting as needed. Returns the
/// final bodies and the recovery ledger.
#[allow(clippy::too_many_arguments)]
pub fn run_treecode(
    machine: &Machine,
    nranks: usize,
    plan: &FaultPlan,
    chaos: &ChaosConfig,
    bodies: Vec<Body>,
    cfg: &GravityConfig,
    steps: u64,
    dt: f64,
) -> (Vec<Body>, ChaosReport) {
    let (bodies, report, _) =
        run_treecode_impl(machine, nranks, plan, chaos, bodies, cfg, steps, dt, false);
    (bodies, report)
}

/// [`run_treecode`] with the observability layer switched on: every rank
/// records spans (`chaos.restore` / `chaos.force` / `chaos.exchange` /
/// `chaos.checkpoint`) and transport metrics, and the merged world trace
/// of the final attempt is returned alongside the report.
///
/// Crashed attempts yield no trace — their worlds die mid-flight, so the
/// victims' span stacks never unwind and the drain order races wall
/// clock. Only the completing attempt's trace is deterministic, and that
/// is the one returned. `None` means the job never completed.
#[allow(clippy::too_many_arguments)]
pub fn run_treecode_traced(
    machine: &Machine,
    nranks: usize,
    plan: &FaultPlan,
    chaos: &ChaosConfig,
    bodies: Vec<Body>,
    cfg: &GravityConfig,
    steps: u64,
    dt: f64,
) -> (Vec<Body>, ChaosReport, Option<obs::WorldTrace>) {
    run_treecode_impl(machine, nranks, plan, chaos, bodies, cfg, steps, dt, true)
}

#[allow(clippy::too_many_arguments)]
fn run_treecode_impl(
    machine: &Machine,
    nranks: usize,
    plan: &FaultPlan,
    chaos: &ChaosConfig,
    bodies: Vec<Body>,
    cfg: &GravityConfig,
    steps: u64,
    dt: f64,
    traced: bool,
) -> (Vec<Body>, ChaosReport, Option<obs::WorldTrace>) {
    assert!(nranks >= 1 && steps >= 1 && dt > 0.0);
    let io = IoModel::space_simulator(nranks as u32);
    // A plan with the failure detector armed runs in *degraded* mode:
    // crashes are silent (survivors must reach a quorum verdict naming
    // the dead rank), commits are per-rank shards, and recovery fails
    // over the one condemned rank instead of restarting the world.
    let degraded = plan.heartbeat.is_some();
    // Initial forces, then the step-0 "checkpoint" is the ICs themselves.
    let tree = Tree::build(bodies, cfg.leaf_max);
    let (accel, _) = group_accelerations(&tree, cfg);
    let mut committed = (0u64, 0.0f64, encode_state(0, 0.0, &tree.bodies, &accel));
    // Degraded-mode stable storage: complete shard generations, newest
    // last; two are retained so a rotten shard falls back one commit.
    let mut gens: Vec<Gen> = if degraded {
        vec![Gen {
            step: 0,
            vtime: 0.0,
            shards: encode_shards(0, 0.0, &tree.bodies, &accel, nranks),
        }]
    } else {
        Vec::new()
    };

    let mut report = ChaosReport {
        checkpoint_bytes: committed.2.len(),
        shard_bytes: gens
            .last()
            .map_or(0, |g| g.shards.iter().map(Vec::len).max().unwrap_or(0)),
        ..Default::default()
    };
    let mut clock0 = 0.0;
    let mut futile = 0usize;

    while report.attempts < chaos.max_attempts {
        report.attempts += 1;
        // Choose the state to (re)launch from. Degraded mode reassembles
        // the newest shard generation whose every fragment decodes
        // cleanly, discarding rotten generations (and accounting the
        // extra rolled-back interval as lost work).
        let start_bytes: Vec<u8> = if degraded {
            let mut picked = None;
            while let Some(gen) = gens.last() {
                match assemble(gen, nranks) {
                    Some(st) => {
                        picked = Some(encode_state(st.step, st.time, &st.bodies, &st.accel));
                        break;
                    }
                    None => {
                        let rotten = gens.pop().expect("non-empty");
                        report.shard_fallbacks += 1;
                        let prev_vtime = gens.last().map_or(0.0, |g| g.vtime);
                        report.lost_vtime += (rotten.vtime - prev_vtime).max(0.0);
                    }
                }
            }
            match picked {
                Some(b) => b,
                None => {
                    report.diagnosis =
                        Some("every retained checkpoint generation is corrupt".to_string());
                    break;
                }
            }
        } else {
            committed.2.clone()
        };
        let progress_floor = if degraded {
            gens.last().map_or(0, |g| g.step)
        } else {
            committed.0
        };
        // Stable storage for commits made during this attempt: written
        // outside the faulted world, so a later crash cannot claw a
        // commit back. Whole-world mode stores rank 0's full snapshot;
        // degraded mode logs every rank's shard.
        let store: Mutex<Option<(u64, f64, Vec<u8>)>> = Mutex::new(None);
        let shard_log: Mutex<Vec<ShardCommit>> = Mutex::new(Vec::new());
        let start_bytes = &start_bytes;
        let shard_log_ref = &shard_log;
        let world = |comm: &mut Comm| {
            if let Some(w) = chaos.timeline_window_s {
                comm.enable_timeline(w);
            }
            comm.span_enter("chaos.restore");
            let State {
                mut step,
                mut time,
                mut bodies,
                mut accel,
            } = decode_state(start_bytes).expect("stable storage is uncorrupted");
            comm.span_exit("chaos.restore");
            let n = bodies.len();
            let size = comm.size();
            // Per-attempt incremental commit log: the first commit of an
            // attempt ships a full columnar snapshot of this rank's
            // stripe, later commits ship dirty-cell deltas against the
            // rank's own previous commit. The chain is self-consistent
            // within the attempt; promotion (outside the world)
            // materializes it back into full records.
            let mut log = GenerationLog::new(StoreConfig::default(), N_AUX as u32);
            while step < steps {
                // Kick (half) + drift, identically on every replica.
                for (b, a) in bodies.iter_mut().zip(&accel) {
                    for d in 0..3 {
                        b.vel[d] += 0.5 * dt * a.acc[d];
                        b.pos[d] += dt * b.vel[d];
                    }
                }
                // Force phase. Tree::build is deterministic, so all
                // replicas reorder their arrays identically; the clock is
                // charged 1/size of the work — the simulated machine runs
                // the force phase in parallel even though this in-memory
                // replica evaluates every stripe.
                comm.span_enter("chaos.force");
                let tree = Tree::build(std::mem::take(&mut bodies), cfg.leaf_max);
                let (full, stats) = group_accelerations(&tree, cfg);
                bodies = tree.bodies;
                let share = 1.0 / size as f64;
                // Replicated evaluation covers all stripes; each rank's
                // simulated share of the interactions is 1/size.
                comm.obs_count(
                    "walk.interactions",
                    ((stats.p2p + stats.m2p) as f64 * share) as u64,
                );
                comm.compute_eff(
                    stats.flops(cfg.quadrupole) * share,
                    (n * std::mem::size_of::<Body>()) as f64 * share,
                    chaos.cpu_eff,
                );
                comm.span_exit("chaos.force");
                // Exchange acceleration stripes and adopt the *received*
                // values, so transport integrity decides the physics.
                comm.span_enter("chaos.exchange");
                let mine: Vec<[f64; 4]> = full[stripe(n, size, comm.rank())]
                    .iter()
                    .map(|a| [a.acc[0], a.acc[1], a.acc[2], a.pot])
                    .collect();
                let stripes = comm.allgather(mine);
                for (r, part) in stripes.iter().enumerate() {
                    let range = stripe(n, size, r);
                    assert_eq!(part.len(), range.len(), "stripe {r} truncated");
                    for (a, v) in accel[range].iter_mut().zip(part) {
                        *a = Accel {
                            acc: [v[0], v[1], v[2]],
                            pot: v[3],
                        };
                    }
                }
                comm.span_exit("chaos.exchange");
                // Kick (half).
                for (b, a) in bodies.iter_mut().zip(&accel) {
                    for d in 0..3 {
                        b.vel[d] += 0.5 * dt * a.acc[d];
                    }
                }
                step += 1;
                time += dt;
                if step % chaos.checkpoint_every == 0 || step == steps {
                    // Every rank writes its share of the snapshot to
                    // local disk (Figure 7's parallel I/O path), then the
                    // barrier makes the commit atomic-at-a-step.
                    comm.span_enter("chaos.checkpoint");
                    if degraded {
                        // Per-rank shard commit: each rank frames only
                        // its own stripe, so a later recovery re-reads
                        // one shard instead of the whole world.
                        let range = stripe(n, size, comm.rank());
                        let record = log
                            .commit(step, &bodies[range.clone()], &aux_of(&accel[range]))
                            .to_vec();
                        if matches!(store::record_kind(&record), Ok(RecordKind::Delta { .. })) {
                            comm.obs_count("store.delta_commits", 1);
                        } else {
                            comm.obs_count("store.full_commits", 1);
                        }
                        comm.obs_count("store.commit_bytes", record.len() as u64);
                        let shard = ckpt::save_shard(
                            &ckpt::ShardHeader {
                                rank: comm.rank() as u32,
                                of_ranks: size as u32,
                                step,
                                time,
                            },
                            &record,
                        );
                        comm.obs_count("ckpt.bytes", shard.len() as u64);
                        comm.obs_count("ckpt.commits", 1);
                        comm.elapse(io.snapshot_time(shard.len() as f64));
                        comm.barrier();
                        shard_log_ref
                            .lock()
                            .unwrap()
                            .push((step, comm.time(), comm.rank(), shard));
                    } else {
                        let bytes = encode_state(step, time, &bodies, &accel);
                        comm.obs_count("ckpt.bytes", bytes.len() as u64);
                        comm.obs_count("ckpt.commits", 1);
                        comm.elapse(io.snapshot_time(bytes.len() as f64 / size as f64));
                        comm.barrier();
                        if comm.rank() == 0 {
                            *store.lock().unwrap() = Some((step, comm.time(), bytes));
                        }
                    }
                    comm.span_exit("chaos.checkpoint");
                }
            }
            let final_bodies = if comm.rank() == 0 { bodies } else { Vec::new() };
            (final_bodies, comm.time(), comm.stats())
        };
        let (outcome, trace) = if traced {
            run_with_faults_observed(machine.clone(), nranks, plan, clock0, world)
        } else {
            (
                run_with_faults(machine.clone(), nranks, plan, clock0, world),
                None,
            )
        };
        // Commits outlive the attempt that made them.
        if let Some((step, vtime, bytes)) = store.into_inner().unwrap() {
            if step > committed.0 {
                report.commits += 1;
                report.checkpoint_bytes = bytes.len();
                committed = (step, vtime, bytes);
            }
        }
        // Promote complete shard generations: a step commits only once
        // every rank's shard for it reached stable storage (a crash
        // between the barrier and some rank's write leaves a torn,
        // unpromotable generation — exactly a torn parallel commit).
        // Logged shards carry incremental store records; promotion
        // cross-validates the full header set (one world, one step, one
        // commit time), materializes every rank's delta chain and
        // retains standalone *full* records, so the two-generation
        // fallback window never depends on an older attempt's bytes.
        {
            let mut by_step: std::collections::BTreeMap<u64, ShardSlots> =
                std::collections::BTreeMap::new();
            let mut chains: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); nranks];
            let mut hdrs: std::collections::BTreeMap<(u64, usize), ckpt::ShardHeader> =
                std::collections::BTreeMap::new();
            for (step, vtime, rank, bytes) in shard_log.into_inner().unwrap() {
                if let Ok((h, record)) = ckpt::load_shard::<Vec<u8>>(&bytes) {
                    hdrs.insert((step, rank), h);
                    chains[rank].push((step, record));
                }
                by_step.entry(step).or_insert_with(|| vec![None; nranks])[rank] =
                    Some((vtime, bytes));
            }
            for chain in &mut chains {
                chain.sort_by_key(|(s, _)| *s);
            }
            'steps: for (step, slots) in by_step {
                if step <= gens.last().map_or(0, |g| g.step) || !slots.iter().all(Option::is_some) {
                    continue;
                }
                let headers: Vec<ckpt::ShardHeader> = match (0..nranks)
                    .map(|r| hdrs.get(&(step, r)).copied())
                    .collect::<Option<Vec<_>>>()
                {
                    Some(h) => h,
                    None => continue,
                };
                if ckpt::validate_shard_headers(&headers, nranks).is_err()
                    || headers[0].step != step
                {
                    continue;
                }
                let vtime = slots
                    .iter()
                    .map(|s| s.as_ref().expect("complete").0)
                    .fold(0.0, f64::max);
                #[allow(unused_mut)]
                let mut shards: Vec<Vec<u8>> = Vec::with_capacity(nranks);
                let mut commit_bytes = 0u64;
                let mut full_bytes = 0u64;
                for (r, header) in headers.iter().enumerate() {
                    let chain: Vec<(u64, Vec<u8>)> = chains[r]
                        .iter()
                        .filter(|(s, _)| *s <= step)
                        .cloned()
                        .collect();
                    match chain.last() {
                        Some((s, record)) if *s == step => commit_bytes += record.len() as u64,
                        _ => continue 'steps,
                    }
                    let full = match store::log::materialize_records(&chain, step) {
                        Ok(snap) => snap.to_bytes(),
                        Err(_) => continue 'steps,
                    };
                    full_bytes += full.len() as u64;
                    shards.push(ckpt::save_shard(header, &full));
                }
                #[cfg(test)]
                if let Some((r, s)) = chaos.corrupt_shard {
                    if s == step {
                        let mid = shards[r].len() / 2;
                        shards[r][mid] ^= 0x40;
                    }
                }
                report.commits += 1;
                report.store_commit_bytes += commit_bytes;
                report.store_full_bytes += full_bytes;
                report.checkpoint_bytes = shards.iter().map(Vec::len).sum();
                report.shard_bytes = shards.iter().map(Vec::len).max().unwrap_or(0);
                gens.push(Gen {
                    step,
                    vtime,
                    shards,
                });
                if gens.len() > 2 {
                    gens.remove(0);
                }
            }
        }
        match outcome {
            WorldOutcome::Completed(results) => {
                report.completed = true;
                let mut final_bodies = Vec::new();
                for (bodies, t, stats) in results {
                    if !bodies.is_empty() {
                        final_bodies = bodies;
                    }
                    report.final_vtime = report.final_vtime.max(t);
                    report.drops += stats.fault.drops;
                    report.corruptions += stats.fault.corruptions;
                    report.duplicates += stats.fault.duplicates;
                    report.reorders += stats.fault.reorders;
                    report.retransmits += stats.fault.retransmits;
                    report.acks += stats.fault.acks;
                }
                report.availability = if report.final_vtime > 0.0 {
                    1.0 - (report.lost_vtime
                        + report.restart_overhead_s
                        + report.shard_recovery_overhead_s)
                        / report.final_vtime
                } else {
                    1.0
                };
                return (final_bodies, report, trace);
            }
            WorldOutcome::Crashed { rank, at } => {
                if degraded {
                    // Quorum verdict named the dead rank; only its shard
                    // is re-read and only its node pays the failover
                    // penalty. Survivors roll back in place — no world
                    // restart, so `restarts` stays untouched.
                    report.shard_recoveries += 1;
                    let base_vtime = gens.last().map_or(0.0, |g| g.vtime);
                    report.lost_vtime += (at - base_vtime).max(0.0);
                    let shard_len = gens
                        .last()
                        .map_or(0, |g| g.shards.get(rank).map_or(0, Vec::len));
                    let restore_s = chaos.failover_penalty_s + io.snapshot_time(shard_len as f64);
                    report.shard_recovery_overhead_s += restore_s;
                    clock0 = at + restore_s;
                } else {
                    report.restarts += 1;
                    // Work since the last commit is gone; reboot, re-read
                    // the checkpoint, and resume the virtual clock past
                    // all of it.
                    report.lost_vtime += (at - committed.1).max(0.0);
                    let restore_s =
                        chaos.restart_penalty_s + io.snapshot_time(committed.2.len() as f64);
                    report.restart_overhead_s += restore_s;
                    clock0 = at + restore_s;
                }
                // Livelock guard: recoveries that never advance the
                // committed frontier (crash-before-first-checkpoint in a
                // loop) get a bounded number of identical retries, then a
                // diagnosis instead of an infinite restart storm.
                let frontier = if degraded {
                    gens.last().map_or(0, |g| g.step)
                } else {
                    committed.0
                };
                futile = if frontier > progress_floor {
                    0
                } else {
                    futile + 1
                };
                if futile >= chaos.max_futile_attempts {
                    report.diagnosis = Some(format!(
                        "livelock: {futile} consecutive recoveries with no commit \
                         progress (rank {rank} died at t={at:.4}, frontier stuck at \
                         step {frontier})"
                    ));
                    break;
                }
            }
        }
    }
    report.completed = false;
    report.final_vtime = clock0;
    report.availability = 0.0;
    if report.diagnosis.is_none() {
        report.diagnosis = Some(format!(
            "gave up: max_attempts ({}) exhausted without completing",
            chaos.max_attempts
        ));
    }
    (Vec::new(), report, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::MachineSpec;
    use hot::models::plummer;

    fn ss_machine() -> Machine {
        Machine::space_simulator(MachineSpec::space_simulator().profile)
    }

    fn test_cfg() -> GravityConfig {
        GravityConfig {
            theta: 0.6,
            eps: 0.05,
            ..Default::default()
        }
    }

    fn max_pos_delta(a: &[Body], b: &[Body]) -> f64 {
        assert_eq!(a.len(), b.len());
        let mut worst = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id);
            for d in 0..3 {
                worst = worst.max((x.pos[d] - y.pos[d]).abs());
            }
        }
        worst
    }

    #[test]
    fn fault_free_chaos_run_is_clean() {
        let (bodies, report) = run_treecode(
            &ss_machine(),
            4,
            &FaultPlan::none(1),
            &ChaosConfig::default(),
            plummer(300, 42),
            &test_cfg(),
            6,
            0.01,
        );
        assert!(report.completed);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.lost_vtime, 0.0);
        // No injections, no loss, no recovery work — but the reliable
        // transport still acks every data packet it carries.
        let injected = report.drops
            + report.corruptions
            + report.duplicates
            + report.reorders
            + report.retransmits;
        assert_eq!(injected, 0);
        assert!(report.acks > 0);
        assert!((report.availability - 1.0).abs() < 1e-12);
        assert_eq!(bodies.len(), 300);
        assert!(report.final_vtime > 0.0);
    }

    /// The PR's acceptance run: a 16-rank treecode under paper-calibrated
    /// fault rates plus a guaranteed mid-run crash completes via
    /// retransmit + checkpoint/restart and produces the same physics as
    /// the fault-free run.
    #[test]
    fn treecode_16_ranks_survives_paper_faults_with_same_physics() {
        let machine = ss_machine();
        let cfg = test_cfg();
        let ics = plummer(480, 7);
        let steps = 6;
        let chaos = ChaosConfig {
            checkpoint_every: 2,
            ..Default::default()
        };
        let (clean_bodies, clean) = run_treecode(
            &machine,
            16,
            &FaultPlan::none(3),
            &chaos,
            ics.clone(),
            &cfg,
            steps,
            0.01,
        );
        assert!(clean.completed && clean.restarts == 0);

        // §2.1 rates, accelerated so the short virtual horizon sees real
        // soft-error pressure, plus one crash that is certain to land
        // mid-run (the calibrated per-rank crash draw is probabilistic).
        let mut plan = FaultPlan::paper_calibrated(
            &nodesim::ReliabilityModel::space_simulator(),
            16,
            clean.final_vtime,
            60.0,
            11,
        );
        plan.crashes.retain(|c| c.at > 0.2 * clean.final_vtime);
        let drop_p = plan.drop.max(0.08);
        plan = plan.with_drop(drop_p);
        plan = plan.with_crash(5, 0.6 * clean.final_vtime);

        let (bodies, report) = run_treecode(&machine, 16, &plan, &chaos, ics, &cfg, steps, 0.01);
        assert!(report.completed, "chaos run failed: {report:?}");
        assert!(report.restarts >= 1, "crash never fired: {report:?}");
        assert!(report.retransmits > 0 && report.drops > 0, "{report:?}");
        assert!(report.commits >= 1);
        assert!(report.lost_vtime > 0.0 && report.restart_overhead_s > 0.0);
        assert!(report.availability > 0.0 && report.availability < 1.0);
        assert!(report.final_vtime > clean.final_vtime);
        // Replicated state + exactly-once delivery + bit-exact
        // checkpoints: the recovered physics is the fault-free physics.
        let delta = max_pos_delta(&clean_bodies, &bodies);
        assert!(delta < 1e-12, "physics diverged by {delta}");
    }

    /// The degraded-mode acceptance run: with the failure detector armed,
    /// a crash is *silent* — no oracle flags the dead rank; survivors
    /// must reach a quorum verdict naming it — and recovery restores only
    /// the condemned rank's shard instead of restarting the world. The
    /// recovered physics is still bit-for-bit the fault-free physics.
    #[test]
    fn degraded_failover_restores_one_shard_with_same_physics() {
        let machine = ss_machine();
        let cfg = test_cfg();
        let ics = plummer(300, 42);
        let steps = 6;
        let chaos = ChaosConfig {
            checkpoint_every: 2,
            ..Default::default()
        };
        let (clean_bodies, clean) = run_treecode(
            &machine,
            4,
            &FaultPlan::none(21),
            &chaos,
            ics.clone(),
            &cfg,
            steps,
            0.01,
        );
        assert!(clean.completed && clean.restarts == 0);

        let plan = FaultPlan::none(21)
            .with_heartbeat(msg::HeartbeatConfig::default())
            .with_crash(2, 0.6 * clean.final_vtime);
        let (bodies, report) = run_treecode(&machine, 4, &plan, &chaos, ics, &cfg, steps, 0.01);
        assert!(report.completed, "degraded run failed: {report:?}");
        // The whole point: a detected crash costs one rank's failover,
        // never a world restart.
        assert_eq!(report.restarts, 0, "{report:?}");
        assert_eq!(report.shard_recoveries, 1, "{report:?}");
        assert_eq!(report.shard_fallbacks, 0, "{report:?}");
        assert!(report.shard_recovery_overhead_s > 0.0);
        assert!(report.commits >= 1);
        assert!(report.shard_bytes > 0 && report.shard_bytes < report.checkpoint_bytes);
        // Incremental commits: after the first full record per attempt,
        // dirty-cell deltas ship strictly fewer bytes than re-writing
        // full snapshots would.
        assert!(
            report.store_commit_bytes > 0 && report.store_commit_bytes < report.store_full_bytes,
            "delta commits not smaller: {} vs {} full",
            report.store_commit_bytes,
            report.store_full_bytes
        );
        assert!(report.availability > 0.0 && report.availability < 1.0);
        assert!(report.diagnosis.is_none(), "{report:?}");
        let delta = max_pos_delta(&clean_bodies, &bodies);
        assert!(delta < 1e-12, "physics diverged by {delta}");
    }

    /// At-rest rot in a committed shard is discovered at recovery decode
    /// time; recovery falls back to the previous complete generation
    /// instead of restoring rot (or crashing the recovery itself).
    #[test]
    fn corrupt_shard_falls_back_one_generation() {
        let machine = ss_machine();
        let cfg = test_cfg();
        let ics = plummer(250, 33);
        let steps = 4;
        let chaos = ChaosConfig {
            checkpoint_every: 2,
            corrupt_shard: Some((1, 2)),
            ..Default::default()
        };
        let (clean_bodies, clean) = run_treecode(
            &machine,
            4,
            &FaultPlan::none(35),
            &chaos,
            ics.clone(),
            &cfg,
            steps,
            0.01,
        );
        assert!(clean.completed, "{clean:?}");

        let plan = FaultPlan::none(35)
            .with_heartbeat(msg::HeartbeatConfig::default())
            .with_crash(1, 0.7 * clean.final_vtime);
        let (bodies, report) = run_treecode(&machine, 4, &plan, &chaos, ics, &cfg, steps, 0.01);
        assert!(report.completed, "fallback run failed: {report:?}");
        assert_eq!(report.restarts, 0, "{report:?}");
        assert_eq!(report.shard_recoveries, 1, "{report:?}");
        assert!(
            report.shard_fallbacks >= 1,
            "rotten generation never discarded: {report:?}"
        );
        let delta = max_pos_delta(&clean_bodies, &bodies);
        assert!(delta < 1e-12, "physics diverged by {delta}");
    }

    /// The livelock guard: an attacker crashing faster than the restart
    /// penalty produces identical recoveries that never advance the
    /// commit frontier. After `max_futile_attempts` of those, the run
    /// fails *with a diagnosis* instead of burning all of `max_attempts`
    /// (or, with a large cap, looping near-forever).
    #[test]
    fn repeated_crash_livelock_is_diagnosed() {
        let chaos = ChaosConfig {
            max_attempts: 50,
            max_futile_attempts: 3,
            restart_penalty_s: 0.0,
            // Commit only at the end: every mid-run crash lands before
            // any progress reaches stable storage.
            checkpoint_every: 10_000,
            ..Default::default()
        };
        let mut plan = FaultPlan::none(5);
        for k in 0..2000 {
            plan = plan.with_crash(1, (k + 1) as f64 * 5e-3);
        }
        let (_, report) = run_treecode(
            &ss_machine(),
            4,
            &plan,
            &chaos,
            plummer(200, 9),
            &test_cfg(),
            200,
            0.01,
        );
        assert!(!report.completed);
        assert_eq!(report.attempts, 3, "futile cap ignored: {report:?}");
        assert_eq!(report.restarts, 3);
        assert_eq!(report.availability, 0.0);
        let diag = report.diagnosis.expect("livelock must carry a diagnosis");
        assert!(diag.contains("livelock"), "unhelpful diagnosis: {diag}");
    }

    #[test]
    fn lethal_plan_reports_failure_instead_of_hanging() {
        // Crash immediately on every attempt: repeated deaths before the
        // first commit must exhaust max_attempts, not loop forever. The
        // crash repeats because each restart's clock0 includes only the
        // restart penalty — with an attacker scheduling crashes faster
        // than the penalty, the job cannot make progress.
        let chaos = ChaosConfig {
            max_attempts: 3,
            restart_penalty_s: 0.0,
            ..Default::default()
        };
        let mut plan = FaultPlan::none(5);
        for k in 0..2000 {
            plan = plan.with_crash(1, (k + 1) as f64 * 5e-3);
        }
        let (_, report) = run_treecode(
            &ss_machine(),
            4,
            &plan,
            &chaos,
            plummer(200, 9),
            &test_cfg(),
            200,
            0.01,
        );
        assert!(!report.completed);
        assert_eq!(report.attempts, 3);
        assert_eq!(report.availability, 0.0);
        assert!(report.diagnosis.is_some(), "failure must explain itself");
    }

    #[test]
    fn checkpoints_shrink_lost_time() {
        // More frequent commits → less work destroyed per crash.
        let machine = ss_machine();
        let cfg = test_cfg();
        let ics = plummer(250, 13);
        // Baseline on the *cheapest* timeline (one end-of-run commit), so
        // the crash time below lands mid-run for both configurations —
        // the per-step variant only runs longer.
        let (_, clean) = run_treecode(
            &machine,
            4,
            &FaultPlan::none(17),
            &ChaosConfig {
                checkpoint_every: 8,
                ..Default::default()
            },
            ics.clone(),
            &cfg,
            8,
            0.01,
        );
        let crash_at = 0.6 * clean.final_vtime;
        let mut lost = Vec::new();
        for every in [8u64, 1] {
            let chaos = ChaosConfig {
                checkpoint_every: every,
                ..Default::default()
            };
            let plan = FaultPlan::none(17).with_crash(2, crash_at);
            let (_, report) = run_treecode(&machine, 4, &plan, &chaos, ics.clone(), &cfg, 8, 0.01);
            assert!(report.completed, "every={every}: {report:?}");
            assert_eq!(report.restarts, 1);
            lost.push(report.lost_vtime);
        }
        assert!(
            lost[1] < lost[0],
            "per-step checkpoints should lose less than end-only: {lost:?}"
        );
    }
}
