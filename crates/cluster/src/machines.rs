//! The machine zoo: every system in Table 6 plus the benchmark
//! comparators.
//!
//! Each machine couples a gravity-kernel CPU model (Table 5 where the
//! paper measured one; calibrated micro-architectural parameters
//! otherwise — see EXPERIMENTS.md), a network profile, and metadata.

use netsim::LibraryProfile;
use nodesim::cpu_models::{table5_cpus, CpuKernelModel};

/// Which fabric topology the machine uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FabricKind {
    /// The Space Simulator's trunked Foundry pair.
    SpaceSimulatorSwitch,
    /// An idealized full crossbar (fat-tree class networks).
    Crossbar,
}

/// One machine.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    pub name: &'static str,
    pub site: &'static str,
    pub year: u32,
    pub procs: u32,
    pub cpu: CpuKernelModel,
    pub profile: LibraryProfile,
    pub fabric: FabricKind,
    /// Purchase price in dollars, where the paper quotes one.
    pub price: Option<f64>,
}

fn table5_cpu(name: &str) -> CpuKernelModel {
    table5_cpus()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no Table 5 CPU named {name}"))
}

/// CPUs of the pre-2002 machines (not in Table 5): micro-architectural
/// parameters calibrated against the machines' known treecode rates.
fn historical_cpu(
    name: &'static str,
    clock_mhz: f64,
    fpc: f64,
    sqrt_cycles: f64,
) -> CpuKernelModel {
    CpuKernelModel {
        name,
        clock_mhz,
        karp_flops_per_cycle: fpc,
        sqrt_div_cycles: sqrt_cycles,
    }
}

impl MachineSpec {
    /// The Space Simulator (the LAM configuration of April 2003).
    pub fn space_simulator() -> MachineSpec {
        MachineSpec {
            name: "Space Simulator",
            site: "LANL",
            year: 2003,
            procs: 288,
            cpu: table5_cpu("2530-MHz Intel P4"),
            profile: LibraryProfile::lam_homogeneous(),
            fabric: FabricKind::SpaceSimulatorSwitch,
            price: Some(483_855.0),
        }
    }

    /// ASCI Q (segment QB): 1.25 GHz Alpha EV68 + Quadrics.
    pub fn asci_qb() -> MachineSpec {
        MachineSpec {
            name: "ASCI QB",
            site: "LANL",
            year: 2003,
            procs: 3600,
            cpu: table5_cpu("1250-MHz Alpha 21264C"),
            profile: LibraryProfile::quadrics(),
            fabric: FabricKind::Crossbar,
            price: None,
        }
    }

    /// NERSC IBM SP-3 (375 MHz Power3, Colony switch).
    pub fn ibm_sp3() -> MachineSpec {
        MachineSpec {
            name: "IBM SP-3(375/W)",
            site: "NERSC",
            year: 2002,
            procs: 256,
            cpu: table5_cpu("375-MHz IBM Power3"),
            profile: LibraryProfile {
                name: "SP Colony",
                latency_s: 20.0e-6,
                bandwidth: 350.0e6,
                large_threshold: usize::MAX,
                large_bw: 350.0e6,
                send_overhead_s: 3.0e-6,
                recv_overhead_s: 3.0e-6,
            },
            fabric: FabricKind::Crossbar,
            price: None,
        }
    }

    /// Green Destiny: 240 Transmeta TM5600 blades (212 used).
    pub fn green_destiny() -> MachineSpec {
        MachineSpec {
            name: "Green Destiny",
            site: "LANL",
            year: 2002,
            procs: 212,
            cpu: table5_cpu("667-MHz Transmeta TM5600"),
            profile: LibraryProfile::fast_ethernet(),
            fabric: FabricKind::Crossbar,
            price: None,
        }
    }

    /// SGI Origin 2000 (250 MHz R10000, ccNUMA).
    pub fn origin2000() -> MachineSpec {
        MachineSpec {
            name: "SGI Origin 2000",
            site: "LANL",
            year: 2000,
            procs: 64,
            cpu: historical_cpu("250-MHz MIPS R10000", 250.0, 1.05, 35.0),
            profile: LibraryProfile {
                name: "ccNUMA",
                latency_s: 3.0e-6,
                bandwidth: 160.0e6,
                large_threshold: usize::MAX,
                large_bw: 160.0e6,
                send_overhead_s: 1.0e-6,
                recv_overhead_s: 1.0e-6,
            },
            fabric: FabricKind::Crossbar,
            price: None,
        }
    }

    /// Avalon: 140 (128 used) 533 MHz Alpha 21164 + Fast Ethernet.
    pub fn avalon() -> MachineSpec {
        MachineSpec {
            name: "Avalon",
            site: "LANL",
            year: 1998,
            procs: 128,
            cpu: table5_cpu("533-MHz Alpha EV56"),
            profile: LibraryProfile::fast_ethernet(),
            fabric: FabricKind::Crossbar,
            price: Some(300_000.0),
        }
    }

    /// Loki: 16 Pentium Pro 200 + Fast Ethernet (Table 7).
    pub fn loki() -> MachineSpec {
        MachineSpec {
            name: "Loki",
            site: "LANL",
            year: 1996,
            procs: 16,
            cpu: historical_cpu("200-MHz Pentium Pro", 200.0, 0.52, 68.0),
            profile: LibraryProfile::fast_ethernet(),
            fabric: FabricKind::Crossbar,
            price: Some(51_379.0),
        }
    }

    /// Loki + Hyglac: the 32-processor SC'96 run over two sites' worth
    /// of hardware (higher effective latency).
    pub fn loki_hyglac() -> MachineSpec {
        MachineSpec {
            name: "Loki+Hyglac",
            site: "SC '96",
            year: 1996,
            procs: 32,
            cpu: historical_cpu("200-MHz Pentium Pro", 200.0, 0.52, 68.0),
            profile: LibraryProfile {
                name: "Fast Ethernet (bridged)",
                latency_s: 300.0e-6,
                bandwidth: 70.0 * netsim::MBIT,
                large_threshold: usize::MAX,
                large_bw: 70.0 * netsim::MBIT,
                send_overhead_s: 20.0e-6,
                recv_overhead_s: 20.0e-6,
            },
            fabric: FabricKind::Crossbar,
            price: Some(103_000.0),
        }
    }

    /// ASCI Red: 6800 200 MHz Pentium Pros, custom mesh.
    pub fn asci_red() -> MachineSpec {
        MachineSpec {
            name: "ASCI Red",
            site: "Sandia",
            year: 1996,
            procs: 6800,
            cpu: historical_cpu("200-MHz Pentium Pro", 200.0, 0.52, 68.0),
            profile: LibraryProfile {
                name: "ASCI Red mesh",
                latency_s: 15.0e-6,
                bandwidth: 310.0e6,
                large_threshold: usize::MAX,
                large_bw: 310.0e6,
                send_overhead_s: 3.0e-6,
                recv_overhead_s: 3.0e-6,
            },
            fabric: FabricKind::Crossbar,
            price: None,
        }
    }

    /// Cray T3D: 150 MHz Alpha EV4, 3-D torus.
    pub fn cray_t3d() -> MachineSpec {
        MachineSpec {
            name: "Cray T3D",
            site: "JPL",
            year: 1995,
            procs: 256,
            cpu: historical_cpu("150-MHz Alpha 21064", 150.0, 0.30, 110.0),
            profile: LibraryProfile {
                name: "T3D torus",
                latency_s: 3.0e-6,
                bandwidth: 120.0e6,
                large_threshold: usize::MAX,
                large_bw: 120.0e6,
                send_overhead_s: 2.0e-6,
                recv_overhead_s: 2.0e-6,
            },
            fabric: FabricKind::Crossbar,
            price: None,
        }
    }

    /// TMC CM-5: 32 MHz SPARC + vector units.
    pub fn cm5() -> MachineSpec {
        MachineSpec {
            name: "TMC CM-5",
            site: "LANL",
            year: 1995,
            procs: 512,
            cpu: historical_cpu("32-MHz SPARC+VU", 32.0, 1.15, 60.0),
            profile: LibraryProfile {
                name: "CM-5 fat tree",
                latency_s: 8.0e-6,
                bandwidth: 10.0e6,
                large_threshold: usize::MAX,
                large_bw: 10.0e6,
                send_overhead_s: 4.0e-6,
                recv_overhead_s: 4.0e-6,
            },
            fabric: FabricKind::Crossbar,
            price: None,
        }
    }

    /// Intel Delta: 40 MHz i860, 2-D mesh.
    pub fn intel_delta() -> MachineSpec {
        MachineSpec {
            name: "Intel Delta",
            site: "Caltech",
            year: 1993,
            procs: 512,
            cpu: historical_cpu("40-MHz Intel i860", 40.0, 0.68, 55.0),
            profile: LibraryProfile {
                name: "Delta mesh",
                latency_s: 75.0e-6,
                bandwidth: 8.0e6,
                large_threshold: usize::MAX,
                large_bw: 8.0e6,
                send_overhead_s: 30.0e-6,
                recv_overhead_s: 30.0e-6,
            },
            fabric: FabricKind::Crossbar,
            price: None,
        }
    }

    /// The twelve rows of Table 6, newest first (the paper's order).
    pub fn table6_machines() -> Vec<(MachineSpec, u32)> {
        // (machine, procs used in the Table 6 run).
        vec![
            (Self::asci_qb(), 3600),
            (Self::space_simulator(), 288),
            (Self::ibm_sp3(), 256),
            (Self::green_destiny(), 212),
            (Self::origin2000(), 64),
            (Self::avalon(), 128),
            (Self::loki(), 16),
            (Self::loki_hyglac(), 32),
            (Self::asci_red(), 6800),
            (Self::cray_t3d(), 256),
            (Self::cm5(), 512),
            (Self::intel_delta(), 512),
        ]
    }

    /// The paper's measured Mflops/proc for each Table 6 row.
    pub fn table6_paper_values() -> Vec<(&'static str, f64, f64)> {
        // (name, total Gflop/s, Mflops/proc)
        vec![
            ("ASCI QB", 2793.0, 775.8),
            ("Space Simulator", 179.7, 623.9),
            ("IBM SP-3(375/W)", 57.70, 225.0),
            ("Green Destiny", 38.9, 183.5),
            ("SGI Origin 2000", 13.10, 205.0),
            ("Avalon", 16.16, 126.0),
            ("Loki", 1.28, 80.0),
            ("Loki+Hyglac", 2.19, 68.4),
            ("ASCI Red", 464.9, 68.4),
            ("Cray T3D", 7.94, 31.0),
            ("TMC CM-5", 14.06, 27.5),
            ("Intel Delta", 10.02, 19.6),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_has_twelve_machines() {
        let ms = MachineSpec::table6_machines();
        assert_eq!(ms.len(), 12);
        assert_eq!(MachineSpec::table6_paper_values().len(), 12);
        for ((m, _), (name, _, _)) in ms.iter().zip(MachineSpec::table6_paper_values()) {
            assert_eq!(m.name, name);
        }
    }

    #[test]
    fn space_simulator_kernel_rate_matches_table5() {
        let ss = MachineSpec::space_simulator();
        assert!((ss.cpu.karp_mflops() - 792.6).abs() < 20.0);
    }

    #[test]
    fn newer_cpus_are_faster() {
        let ss = MachineSpec::space_simulator();
        let loki = MachineSpec::loki();
        assert!(ss.cpu.best_mflops() > 5.0 * loki.cpu.best_mflops());
    }

    #[test]
    fn machine_prices_match_the_boms() {
        assert_eq!(
            MachineSpec::space_simulator().price,
            Some(nodesim::Bom::space_simulator().total())
        );
        assert_eq!(
            MachineSpec::loki().price,
            Some(nodesim::Bom::loki().total())
        );
    }
}
