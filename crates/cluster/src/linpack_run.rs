//! The HPL cluster model: Figure 3 and the §3.3 story.
//!
//! October 2002: 665.1 Gflop/s on 288 processors with MPICH 1.2.4 and
//! ATLAS. April 2003: 757.1 Gflop/s with LAM 6.5.9 and ATLAS 3.5.0 —
//! "mostly due to improved network performance via the switch to LAM".
//! Our model reproduces that mechanism: mpich-1's large-message
//! bandwidth collapse (Figure 2) is exactly what throttles HPL's panel
//! broadcasts.

use netsim::LibraryProfile;

/// Single-node HPL rate (Table 2: 3.302 Gflop/s with the 2002 ATLAS).
pub const NODE_GFLOPS_ATLAS_2002: f64 = 3.302;
/// With ATLAS 3.5.0 (the April 2003 run; ~4% faster DGEMM).
pub const NODE_GFLOPS_ATLAS_350: f64 = 3.44;

/// Communication overhead constant, calibrated once so the October 2002
/// (MPICH) point reproduces 665.1 Gflop/s; the LAM point is then a
/// prediction.
pub const COMM_CONSTANT: f64 = 5.1;

/// Problem size filling ~60% of memory on `p` 1 GB nodes.
pub fn hpl_n(p: usize) -> f64 {
    (0.6 * p as f64 * 1.0e9 / 8.0).sqrt()
}

/// Modeled HPL performance in Gflop/s for `p` processors.
pub fn hpl_model(p: usize, profile: &LibraryProfile, node_gflops: f64) -> f64 {
    let n = hpl_n(p);
    let flops = 2.0 * n * n * n / 3.0;
    let t_comp = flops / (p as f64 * node_gflops * 1e9);
    // Panel broadcasts + row exchanges: ~N² words over a √P-wide grid,
    // at the library's *large message* bandwidth (HPL panels are MBs).
    let bw = profile.effective_bandwidth(1 << 20);
    let t_comm = COMM_CONSTANT * n * n * 8.0 / ((p as f64).sqrt() * bw);
    // Latency of the ~N/nb panel broadcasts.
    let nb = 128.0;
    let t_lat = (n / nb) * (p as f64).log2() * profile.latency_s;
    flops / (t_comp + t_comm + t_lat) / 1e9
}

/// The October 2002 run: 288 processors, MPICH.
pub fn october_2002() -> f64 {
    hpl_model(288, &LibraryProfile::mpich1(), NODE_GFLOPS_ATLAS_2002)
}

/// The April 2003 run: 288 processors, LAM -O + ATLAS 3.5.0.
pub fn april_2003() -> f64 {
    hpl_model(
        288,
        &LibraryProfile::lam_homogeneous(),
        NODE_GFLOPS_ATLAS_350,
    )
}

/// Figure 3's scaling series: Gflop/s at each processor count, for both
/// library configurations.
pub fn figure3_series(procs: &[usize]) -> Vec<(usize, f64, f64)> {
    procs
        .iter()
        .map(|&p| {
            (
                p,
                hpl_model(p, &LibraryProfile::mpich1(), NODE_GFLOPS_ATLAS_2002),
                hpl_model(p, &LibraryProfile::lam_homogeneous(), NODE_GFLOPS_ATLAS_350),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn october_run_calibrates_to_665() {
        let g = october_2002();
        assert!((g - 665.1).abs() / 665.1 < 0.03, "got {g}");
    }

    #[test]
    fn lam_switch_predicts_the_april_improvement() {
        // The LAM point is a *prediction* (only the MPICH point was
        // calibrated): paper measured 757.1.
        let g = april_2003();
        assert!((g - 757.1).abs() / 757.1 < 0.06, "got {g}");
        assert!(april_2003() > october_2002() * 1.08);
    }

    #[test]
    fn efficiency_is_about_70_percent_of_dgemm_peak() {
        let eff = october_2002() / (288.0 * NODE_GFLOPS_ATLAS_2002);
        assert!(eff > 0.6 && eff < 0.8, "efficiency {eff}");
    }

    #[test]
    fn scaling_is_sublinear_but_strong() {
        let series = figure3_series(&[32, 64, 128, 288]);
        for w in series.windows(2) {
            assert!(w[1].1 > w[0].1, "total Gflop/s must grow with P");
            // Per-proc declines.
            let per0 = w[0].1 / w[0].0 as f64;
            let per1 = w[1].1 / w[1].0 as f64;
            assert!(per1 < per0 * 1.001);
        }
    }

    #[test]
    fn bigger_memory_would_help() {
        // Classic HPL: larger N amortizes communication. Double memory →
        // N up by √2 → efficiency up.
        let small = hpl_model(288, &LibraryProfile::lam_homogeneous(), 3.44);
        // Simulate 2 GB nodes by evaluating at the N of 576 procs.
        let n_big = hpl_n(576);
        let flops = 2.0 * n_big.powi(3) / 3.0;
        let t_comp = flops / (288.0 * 3.44e9);
        let bw = LibraryProfile::lam_homogeneous().effective_bandwidth(1 << 20);
        let t_comm = COMM_CONSTANT * n_big * n_big * 8.0 / ((288.0f64).sqrt() * bw);
        let big = flops / (t_comp + t_comm) / 1e9;
        assert!(big > small);
    }
}
