//! Adversarial schedule checker for the golden worlds.
//!
//! Runs N seeds of the simcheck sweep (treecode16 / chaos16 / storm16 /
//! overlap16 / degraded16 / queries16, each under a reference schedule
//! plus K adversarially permuted + time-jittered schedules) and checks
//! every oracle on every schedule. On a
//! violation the failing seed is minimized — smallest number of permuted
//! scheduling decisions that still fails — and written to an artifact
//! file for CI to upload; the process exits nonzero.
//!
//! ```text
//! simcheck [--seeds N] [--base-seed S] [--schedules K] [--ranks R]
//!          [--bodies B] [--steps T] [--jitter SECONDS] [--out PATH]
//! SIMCHECK_SEED=123 simcheck    # replay exactly one seed, verbosely
//! ```

use cluster::simcheck::{check_seed, shrink, SimcheckConfig, Violation};

fn usage() -> ! {
    eprintln!(
        "usage: simcheck [--seeds N] [--base-seed S] [--schedules K] \
         [--ranks R] [--bodies B] [--steps T] [--jitter SECONDS] [--out PATH]\n\
         env SIMCHECK_SEED=N replays a single seed verbosely"
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = SimcheckConfig::default();
    let mut seeds: u64 = 64;
    let mut base_seed: u64 = 0;
    let mut out_path = String::from("simcheck-failure.txt");

    fn next_val<'a>(it: &mut std::slice::Iter<'a, String>, name: &str) -> &'a str {
        it.next().map(String::as_str).unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        })
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| next_val(&mut it, name);
        match flag.as_str() {
            "--seeds" => seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--base-seed" => base_seed = val("--base-seed").parse().unwrap_or_else(|_| usage()),
            "--schedules" => cfg.schedules = val("--schedules").parse().unwrap_or_else(|_| usage()),
            "--ranks" => cfg.ranks = val("--ranks").parse().unwrap_or_else(|_| usage()),
            "--bodies" => cfg.bodies = val("--bodies").parse().unwrap_or_else(|_| usage()),
            "--steps" => cfg.steps = val("--steps").parse().unwrap_or_else(|_| usage()),
            "--jitter" => cfg.jitter_s = val("--jitter").parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = val("--out").to_string(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    // Replay mode: one seed, full reporting, no artifact.
    if let Ok(s) = std::env::var("SIMCHECK_SEED") {
        let seed: u64 = s.parse().unwrap_or_else(|_| {
            eprintln!("SIMCHECK_SEED must be an integer, got {s:?}");
            std::process::exit(2)
        });
        eprintln!(
            "simcheck replay: seed {seed} ({} ranks, {} bodies, {} steps, {} schedules, jitter {:e})",
            cfg.ranks, cfg.bodies, cfg.steps, cfg.schedules, cfg.jitter_s
        );
        let violations = check_seed(&cfg, seed);
        if violations.is_empty() {
            println!("seed {seed}: clean");
            return;
        }
        for v in &violations {
            println!("VIOLATION {v}");
            if let Some(min) = shrink(&cfg, v) {
                println!("  minimized: {min}");
            }
        }
        std::process::exit(1);
    }

    let mut failures: Vec<Violation> = Vec::new();
    for seed in base_seed..base_seed + seeds {
        let violations = check_seed(&cfg, seed);
        if violations.is_empty() {
            eprintln!("seed {seed}: ok");
        } else {
            for v in &violations {
                eprintln!("seed {seed}: VIOLATION {v}");
            }
            failures.extend(violations);
        }
    }

    if failures.is_empty() {
        println!(
            "simcheck: {seeds} seeds x {} worlds x {} schedules clean \
             ({} ranks, {} bodies, {} steps)",
            cluster::simcheck::World::ALL.len(),
            cfg.schedules + 1,
            cfg.ranks,
            cfg.bodies,
            cfg.steps
        );
        return;
    }

    // Minimize and persist the failures so CI can attach them and a
    // human can replay with SIMCHECK_SEED.
    let mut report = String::new();
    report.push_str(&format!(
        "simcheck failures ({} ranks, {} bodies, {} steps, {} schedules, jitter {:e})\n\n",
        cfg.ranks, cfg.bodies, cfg.steps, cfg.schedules, cfg.jitter_s
    ));
    for v in &failures {
        report.push_str(&format!("VIOLATION {v}\n"));
        match shrink(&cfg, v) {
            Some(min) => report.push_str(&format!("  minimized: {min}\n")),
            None => report.push_str("  minimized: did not reproduce during shrink\n"),
        }
        report.push_str(&format!(
            "  replay: SIMCHECK_SEED={} simcheck --ranks {} --bodies {} --steps {} --schedules {}\n",
            v.seed, cfg.ranks, cfg.bodies, cfg.steps, cfg.schedules
        ));
    }
    eprint!("{report}");
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("could not write {out_path}: {e}");
    } else {
        eprintln!("failure report written to {out_path}");
    }
    std::process::exit(1);
}
