//! Shared helpers for the exhibit regenerators.
//!
//! Every table and figure of the paper has a binary here
//! (`cargo run -p bench --bin table1` … `--bin figure8`, plus
//! `--bin reliability` and `--bin ablations`); this module holds the
//! formatting they share. `--bin all_exhibits` runs the lot.

/// Render an aligned text table: a header row plus data rows.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    line(&mut out);
    for (w, h) in widths.iter().zip(header) {
        out.push_str(&format!("| {h:>w$} "));
    }
    out.push_str("|\n");
    line(&mut out);
    for row in rows {
        for (w, cell) in widths.iter().zip(row) {
            out.push_str(&format!("| {cell:>w$} "));
        }
        out.push_str("|\n");
    }
    line(&mut out);
    out
}

/// Format a float with `digits` decimal places.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a ratio as "model/paper = r".
pub fn ratio(model: f64, paper: f64) -> String {
    format!("{:.2}", model / paper)
}

/// Render an (x, series...) data block as TSV for plotting.
pub fn render_series(title: &str, header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("# {}\n", header.join("\t")));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.0}")
                } else {
                    format!("{v:.5}")
                }
            })
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["name", "val"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.25".into()],
            ],
        );
        assert!(t.contains("| longer |"));
        assert!(t.contains("|      a |"));
    }

    #[test]
    fn series_renders_tsv() {
        let s = render_series("S", &["x", "y"], &[vec![1.0, 2.0]]);
        assert!(s.contains("# S"));
        assert!(s.contains("1\t2"));
    }
}

pub mod report;
pub mod scaling;
