//! Weak/strong scaling sweeps over the treecode (ISSUE PR 9).
//!
//! The paper's Table 6 / Fig 7 claim is a *shape*: parallel efficiency
//! holds inside one 16-port switch module (non-blocking), then falls
//! off once the allgather has to cross the shared 6 Gbit/s module
//! uplinks, and falls again past the chassis boundary where all traffic
//! serializes on the 8 Gbit/s trunk. This module reproduces that curve
//! by sweeping the chaos-harness treecode over a rank list on two
//! machines — the real two-switch fabric and an ideal crossbar control —
//! and folding each point into a [`ScenarioReport`] row tagged with its
//! curve (`mode`, `fabric`) and its efficiency relative to the curve's
//! smallest rank count.
//!
//! Efficiency definitions, on end-to-end virtual time `T(p)`:
//! * weak scaling (fixed bodies per rank): `eff(p) = T(p0) / T(p)`;
//! * strong scaling (fixed total bodies): `eff(p) = T(p0)·p0 / (T(p)·p)`.
//!
//! Crossbar points are byte-deterministic (stateless transfers); the
//! contended fabric serializes transfers in wall-clock arrival order, so
//! its rows carry `deterministic: false` and the comparator pins only
//! their structural claims — exactly the split the standing bisection
//! scenarios already use.

use crate::report::{BenchReport, ScenarioReport};
use cluster::chaos::{run_treecode_traced, ChaosConfig};
use cluster::golden_ics;
use hot::gravity::GravityConfig;
use msg::{FaultPlan, Machine, RetransmitConfig};

/// The full sweep of the paper's scaling exhibits: one point per
/// populated power of two, capped at the 288 CPUs of the April 2003
/// record run.
pub const DEFAULT_RANKS: &[usize] = &[2, 4, 8, 16, 32, 64, 128, 288];

/// Scaling discipline of one curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fixed bodies per rank; the problem grows with the machine.
    Weak,
    /// Fixed total bodies; the machine eats a constant problem.
    Strong,
}

impl Mode {
    pub fn name(self) -> &'static str {
        match self {
            Mode::Weak => "weak",
            Mode::Strong => "strong",
        }
    }
}

/// Machine under the curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricKind {
    /// The two-switch Space Simulator fabric (FastIron 1500 + 800,
    /// LAM profile): module uplinks and the trunk are real, contended
    /// resources.
    Lam,
    /// An ideal crossbar with as many ports as ranks: the control run
    /// where every route is non-blocking.
    Xbar,
}

impl FabricKind {
    pub fn name(self) -> &'static str {
        match self {
            FabricKind::Lam => "lam",
            FabricKind::Xbar => "xbar",
        }
    }

    pub fn machine(self, ranks: usize) -> Machine {
        match self {
            FabricKind::Lam => Machine::space_simulator_lam(),
            FabricKind::Xbar => Machine::ideal(ranks as u32),
        }
    }

    /// Whether virtual timings on this fabric are byte-deterministic.
    /// Contended transfers serialize in wall-clock arrival order.
    pub fn deterministic(self) -> bool {
        matches!(self, FabricKind::Xbar)
    }
}

/// One sweep's shape. `Default` is the full exhibit; tests and the CI
/// job shrink `ranks`/bodies for wall-clock budget.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Rank counts, ascending; the first is each curve's baseline.
    pub ranks: Vec<usize>,
    pub modes: Vec<Mode>,
    pub fabrics: Vec<FabricKind>,
    /// KDK steps per point.
    pub steps: u64,
    pub dt: f64,
    /// Weak scaling: bodies per rank.
    pub bodies_per_rank: usize,
    /// Strong scaling: total bodies (must cover the largest rank count).
    pub strong_bodies: usize,
    /// IC seed, shared by every point so curves differ only in scale.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            ranks: DEFAULT_RANKS.to_vec(),
            modes: vec![Mode::Weak, Mode::Strong],
            fabrics: vec![FabricKind::Lam, FabricKind::Xbar],
            steps: 2,
            dt: 0.01,
            bodies_per_rank: 24,
            strong_bodies: 1152,
            seed: 42,
        }
    }
}

impl SweepConfig {
    /// Drop rank counts above `max` (the CI reduced sweep).
    pub fn capped(mut self, max: usize) -> SweepConfig {
        self.ranks.retain(|&p| p <= max);
        self
    }

    fn bodies_for(&self, mode: Mode, ranks: usize) -> usize {
        match mode {
            Mode::Weak => self.bodies_per_rank * ranks,
            Mode::Strong => self.strong_bodies,
        }
    }
}

/// Run one point of a curve and fold it into a (not yet
/// efficiency-tagged) scenario row named `{mode}_{fabric}_{ranks}`.
pub fn run_point(
    cfg: &SweepConfig,
    mode: Mode,
    fabric: FabricKind,
    ranks: usize,
) -> ScenarioReport {
    let bodies = cfg.bodies_for(mode, ranks);
    assert!(
        bodies >= ranks,
        "{} bodies cannot cover {ranks} ranks",
        bodies
    );
    let machine = fabric.machine(ranks);
    let plan = FaultPlan::none(11).with_retransmit(RetransmitConfig::deterministic());
    // One checkpoint commit at the end of the horizon: the curve should
    // measure the force/exchange pipeline, not checkpoint cadence.
    let chaos = ChaosConfig {
        checkpoint_every: cfg.steps,
        ..Default::default()
    };
    let gravity = GravityConfig {
        theta: 0.6,
        eps: 0.05,
        ..Default::default()
    };
    let (_, report, trace) = run_treecode_traced(
        &machine,
        ranks,
        &plan,
        &chaos,
        golden_ics(bodies, cfg.seed),
        &gravity,
        cfg.steps,
        cfg.dt,
    );
    let name = format!("{}_{}_{}", mode.name(), fabric.name(), ranks);
    assert!(report.completed, "{name} failed: {report:?}");
    let trace = trace.expect("traced run yields a trace");
    trace
        .check_invariants()
        .unwrap_or_else(|e| panic!("{name} invariants: {e}"));
    let cp = obs::critical_path(&trace);
    let eff = obs::efficiency(&trace, &cp);
    let interactions = trace.counter_total("walk.interactions");
    let mut row = ScenarioReport::from_trace(&name, &trace, &cp, &eff, interactions, 1.0)
        .with_scaling(mode.name(), fabric.name(), bodies as u64);
    row.deterministic = fabric.deterministic();
    row
}

/// Run every curve of the sweep and fill in `scaling_efficiency`
/// relative to each curve's smallest rank count. Rows come back in
/// curve order (mode, fabric, then ascending ranks) inside a
/// schema-current [`BenchReport`].
pub fn run_sweep(cfg: &SweepConfig) -> BenchReport {
    assert!(!cfg.ranks.is_empty(), "sweep needs at least one rank count");
    let mut rows = Vec::new();
    for &mode in &cfg.modes {
        for &fabric in &cfg.fabrics {
            let mut base: Option<(usize, f64)> = None;
            for &ranks in &cfg.ranks {
                let mut row = run_point(cfg, mode, fabric, ranks);
                let (p0, t0) = *base.get_or_insert((ranks, row.end_vtime_s));
                row.scaling_efficiency = scaling_efficiency(mode, p0, t0, ranks, row.end_vtime_s);
                eprintln!(
                    "ran {}: end {:.6}s eff {:.3} dominant {}",
                    row.name, row.end_vtime_s, row.scaling_efficiency, row.dominant_wire
                );
                rows.push(row);
            }
        }
    }
    BenchReport::new(rows)
}

/// The efficiency of a `(ranks, T)` point against its curve baseline
/// `(p0, T0)`.
pub fn scaling_efficiency(mode: Mode, p0: usize, t0: f64, ranks: usize, t: f64) -> f64 {
    if !(t > 0.0) || !(t0 > 0.0) {
        return 0.0;
    }
    match mode {
        Mode::Weak => t0 / t,
        Mode::Strong => (t0 * p0 as f64) / (t * ranks as f64),
    }
}

/// Render one curve (filtered from `rows` by mode + fabric) as a TSV
/// series for plotting: `ranks  end_vtime_s  scaling_efficiency`.
pub fn render_curve(report: &BenchReport, mode: Mode, fabric: FabricKind) -> String {
    let rows: Vec<Vec<f64>> = report
        .scenarios
        .iter()
        .filter(|s| s.mode == mode.name() && s.fabric == fabric.name())
        .map(|s| vec![s.ranks as f64, s.end_vtime_s, s.scaling_efficiency])
        .collect();
    crate::render_series(
        &format!("{}-scaling, {} fabric", mode.name(), fabric.name()),
        &["ranks", "end_vtime_s", "scaling_efficiency"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_definitions() {
        // Perfect weak scaling: constant T.
        assert!((scaling_efficiency(Mode::Weak, 2, 1.0, 8, 1.0) - 1.0).abs() < 1e-12);
        // T doubled: half the efficiency.
        assert!((scaling_efficiency(Mode::Weak, 2, 1.0, 8, 2.0) - 0.5).abs() < 1e-12);
        // Perfect strong scaling: T shrinks with 1/p.
        assert!((scaling_efficiency(Mode::Strong, 2, 1.0, 8, 0.25) - 1.0).abs() < 1e-12);
        // No speedup at all: eff = p0/p.
        assert!((scaling_efficiency(Mode::Strong, 2, 1.0, 8, 1.0) - 0.25).abs() < 1e-12);
        // Degenerate timings never divide by zero.
        assert_eq!(scaling_efficiency(Mode::Weak, 2, 0.0, 8, 1.0), 0.0);
        assert_eq!(scaling_efficiency(Mode::Weak, 2, 1.0, 8, 0.0), 0.0);
    }

    #[test]
    fn capped_sweep_drops_large_ranks() {
        let cfg = SweepConfig::default().capped(64);
        assert_eq!(cfg.ranks, vec![2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn weak_bodies_grow_and_strong_bodies_hold() {
        let cfg = SweepConfig::default();
        assert_eq!(cfg.bodies_for(Mode::Weak, 2), 2 * cfg.bodies_per_rank);
        assert_eq!(cfg.bodies_for(Mode::Weak, 288), 288 * cfg.bodies_per_rank);
        assert_eq!(cfg.bodies_for(Mode::Strong, 2), cfg.strong_bodies);
        assert_eq!(cfg.bodies_for(Mode::Strong, 288), cfg.strong_bodies);
        // The default strong problem covers the largest default machine.
        assert!(cfg.strong_bodies >= *DEFAULT_RANKS.last().unwrap());
    }
}
