//! The standing perf ledger: schema-versioned bench reports, a
//! dependency-free JSON round-trip, and the regression comparator.
//!
//! `cargo run -p bench --bin bench_report` folds the standard scenario
//! traces into a [`BenchReport`] and writes `BENCH_report.json`; CI
//! diffs that against the committed baseline with [`compare`], which
//! fails on any metric moving in the bad direction by more than the
//! tolerance. No `serde` in the dependency tree, so the writer emits a
//! fixed key order by hand and [`from_json`] is a minimal
//! recursive-descent parser over exactly the subset the writer uses
//! (objects, arrays, strings, f64 numbers).

use obs::{CriticalPath, Efficiency, WorldTrace};

/// Bump whenever a field is added, removed, or changes meaning; the
/// comparator refuses to diff across versions.
///
/// v2: query-service columns (`queries`, `queries_per_s`,
/// `query_p50_s`/`p95`/`p99`) for scenarios driven by a client fleet.
///
/// v3: scaling-sweep columns (`mode`, `fabric`, `bodies`,
/// `scaling_efficiency`) so the `scaling_sweep` bin's weak/strong
/// curves ride the same report format; absent fields parse to the
/// standing-scenario defaults, so v2 files still load.
///
/// v4: snapshot-store columns (`store_write_mb_s`, `store_read_mb_s`,
/// `incremental_ratio`) for the `store_bench` scenario; absent fields
/// parse to 0 (no store claim), so v3 files still load.
pub const SCHEMA_VERSION: u64 = 4;

/// One scenario's folded metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    pub name: String,
    pub ranks: u64,
    /// Scenario family: `"standing"` for the fixed bench scenarios,
    /// `"weak"` / `"strong"` for scaling-sweep rows.
    pub mode: String,
    /// Fabric tag for sweep rows: `"lam"` (the two-switch Space
    /// Simulator fabric), `"xbar"` (ideal crossbar), `""` for standing
    /// scenarios that fix their own machine.
    pub fabric: String,
    /// Total bodies in the run (0 for non-physics scenarios).
    pub bodies: u64,
    /// Efficiency relative to the same curve's smallest rank count:
    /// weak scaling `T(p0)/T(p)`, strong scaling `T(p0)·p0/(T(p)·p)`.
    /// 1.0 at the curve's base point; 0.0 for standing scenarios.
    pub scaling_efficiency: f64,
    /// Virtual seconds from trace start to the last rank's finish.
    pub end_vtime_s: f64,
    /// Total force-kernel interactions (treecode p2p+m2p or SPH pairs;
    /// 0 for pure communication scenarios).
    pub interactions: u64,
    /// `interactions / end_vtime_s` — the throughput headline.
    pub interactions_per_s: f64,
    /// Kept-work fraction from the chaos report (1.0 for fault-free).
    pub availability: f64,
    /// Whether the scenario's timings are byte-deterministic across
    /// runs. The contended-fabric scenarios serialize transfers in
    /// wall-clock arrival order, so their virtual timings carry
    /// scheduling noise (tens of percent on a loaded single-core
    /// runner); the comparator skips timing metrics for these and
    /// checks only the structural claims (dominant wire class,
    /// availability).
    pub deterministic: bool,
    /// Critical-path breakdown, virtual seconds.
    pub cp_total_s: f64,
    pub cp_work_s: f64,
    pub cp_wire_s: f64,
    pub cp_wait_s: f64,
    /// Wire time per link class, `LinkClass::ALL` order.
    pub cp_wire_by_class_s: [f64; 4],
    /// `LinkClass::name()` of the dominant wire class, or `"none"`.
    pub dominant_wire: String,
    /// POP factors.
    pub parallel_efficiency: f64,
    pub load_balance: f64,
    pub comm_efficiency: f64,
    pub transfer_efficiency: f64,
    pub serialization_efficiency: f64,
    /// Queries answered by the scenario's client fleet (0 for scenarios
    /// without one — the service columns then carry no claim).
    pub queries: u64,
    /// `queries / end_vtime_s` — the service throughput headline.
    pub queries_per_s: f64,
    /// Client-observed reply latency percentiles, virtual seconds.
    pub query_p50_s: f64,
    pub query_p95_s: f64,
    pub query_p99_s: f64,
    /// Snapshot-store effective write throughput: committed *state*
    /// megabytes per virtual second of checkpoint I/O. Delta commits
    /// ship fewer bytes than the state they represent, so this exceeds
    /// the raw disk rate when compression works (0 = no store claim).
    pub store_write_mb_s: f64,
    /// Effective time-travel read throughput: decoded state megabytes
    /// per virtual second spent reading the record chain.
    pub store_read_mb_s: f64,
    /// `full_bytes / commit_bytes` over the commit history: what the
    /// same generations would have cost as full snapshots, over what
    /// the incremental log actually shipped. >= 1; higher is better;
    /// floored in CI.
    pub incremental_ratio: f64,
}

impl ScenarioReport {
    /// Fold a traced run into a scenario row.
    pub fn from_trace(
        name: &str,
        trace: &WorldTrace,
        cp: &CriticalPath,
        eff: &Efficiency,
        interactions: u64,
        availability: f64,
    ) -> ScenarioReport {
        let end = trace.end_time() - trace.start_time();
        ScenarioReport {
            name: name.to_string(),
            ranks: trace.size() as u64,
            mode: "standing".to_string(),
            fabric: String::new(),
            bodies: 0,
            scaling_efficiency: 0.0,
            end_vtime_s: end,
            interactions,
            interactions_per_s: if end > 0.0 {
                interactions as f64 / end
            } else {
                0.0
            },
            availability,
            deterministic: true,
            cp_total_s: cp.total(),
            cp_work_s: cp.work_s(),
            cp_wire_s: cp.wire_total_s(),
            cp_wait_s: cp.wait_s(),
            cp_wire_by_class_s: cp.wire_by_class(),
            dominant_wire: cp
                .dominant_wire()
                .map_or("none".to_string(), |c| c.name().to_string()),
            parallel_efficiency: eff.parallel_efficiency,
            load_balance: eff.load_balance,
            comm_efficiency: eff.comm_efficiency,
            transfer_efficiency: eff.transfer_efficiency,
            serialization_efficiency: eff.serialization_efficiency,
            queries: 0,
            queries_per_s: 0.0,
            query_p50_s: 0.0,
            query_p95_s: 0.0,
            query_p99_s: 0.0,
            store_write_mb_s: 0.0,
            store_read_mb_s: 0.0,
            incremental_ratio: 0.0,
        }
    }

    /// Attach the query-service columns (scenarios with a client fleet).
    pub fn with_queries(mut self, queries: u64, p50: f64, p95: f64, p99: f64) -> ScenarioReport {
        self.queries = queries;
        self.queries_per_s = if self.end_vtime_s > 0.0 {
            queries as f64 / self.end_vtime_s
        } else {
            0.0
        };
        self.query_p50_s = p50;
        self.query_p95_s = p95;
        self.query_p99_s = p99;
        self
    }

    /// Attach the snapshot-store columns (the `store_bench` scenario).
    pub fn with_store(mut self, write_mb_s: f64, read_mb_s: f64, ratio: f64) -> ScenarioReport {
        self.store_write_mb_s = write_mb_s;
        self.store_read_mb_s = read_mb_s;
        self.incremental_ratio = ratio;
        self
    }

    /// Tag a row as one point of a scaling curve. `scaling_efficiency`
    /// stays 0 until the whole curve exists; the sweep fills it in
    /// relative to the curve's smallest rank count.
    pub fn with_scaling(mut self, mode: &str, fabric: &str, bodies: u64) -> ScenarioReport {
        self.mode = mode.to_string();
        self.fabric = fabric.to_string();
        self.bodies = bodies;
        self
    }
}

/// The full report: one row per scenario, in run order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema_version: u64,
    pub scenarios: Vec<ScenarioReport>,
}

impl BenchReport {
    pub fn new(scenarios: Vec<ScenarioReport>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            scenarios,
        }
    }

    pub fn scenario(&self, name: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Shortest-roundtrip float, with non-finite values (which JSON cannot
/// carry) clamped to 0 — a bench metric that went NaN is a bug the
/// comparator will surface as a wild regression, not a parse error.
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0.0".to_string()
    }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize with a fixed key order: byte-deterministic for a
/// deterministic report.
pub fn to_json(r: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {},\n", r.schema_version));
    out.push_str("  \"scenarios\": [");
    for (i, s) in r.scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let fields: Vec<(&str, String)> = vec![
            ("name", jstr(&s.name)),
            ("ranks", s.ranks.to_string()),
            ("mode", jstr(&s.mode)),
            ("fabric", jstr(&s.fabric)),
            ("bodies", s.bodies.to_string()),
            ("scaling_efficiency", jnum(s.scaling_efficiency)),
            ("end_vtime_s", jnum(s.end_vtime_s)),
            ("interactions", s.interactions.to_string()),
            ("interactions_per_s", jnum(s.interactions_per_s)),
            ("availability", jnum(s.availability)),
            ("deterministic", s.deterministic.to_string()),
            ("cp_total_s", jnum(s.cp_total_s)),
            ("cp_work_s", jnum(s.cp_work_s)),
            ("cp_wire_s", jnum(s.cp_wire_s)),
            ("cp_wait_s", jnum(s.cp_wait_s)),
            (
                "cp_wire_by_class_s",
                format!(
                    "[{}]",
                    s.cp_wire_by_class_s
                        .iter()
                        .map(|v| jnum(*v))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ),
            ("dominant_wire", jstr(&s.dominant_wire)),
            ("parallel_efficiency", jnum(s.parallel_efficiency)),
            ("load_balance", jnum(s.load_balance)),
            ("comm_efficiency", jnum(s.comm_efficiency)),
            ("transfer_efficiency", jnum(s.transfer_efficiency)),
            ("serialization_efficiency", jnum(s.serialization_efficiency)),
            ("queries", s.queries.to_string()),
            ("queries_per_s", jnum(s.queries_per_s)),
            ("query_p50_s", jnum(s.query_p50_s)),
            ("query_p95_s", jnum(s.query_p95_s)),
            ("query_p99_s", jnum(s.query_p99_s)),
            ("store_write_mb_s", jnum(s.store_write_mb_s)),
            ("store_read_mb_s", jnum(s.store_read_mb_s)),
            ("incremental_ratio", jnum(s.incremental_ratio)),
        ];
        for (j, (k, v)) in fields.iter().enumerate() {
            out.push_str(&format!(
                "      {}: {v}{}\n",
                jstr(k),
                if j + 1 < fields.len() { "," } else { "" }
            ));
        }
        out.push_str("    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The parser's value tree — just enough JSON for our own files.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Bool(bool),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Value::Num(x)) => Ok(*x),
            other => Err(format!("field {key:?}: expected number, got {other:?}")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Value::Str(s)) => Ok(s),
            other => Err(format!("field {key:?}: expected string, got {other:?}")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(Value::Bool(b)) => Ok(*b),
            other => Err(format!("field {key:?}: expected bool, got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "byte {}: expected {:?}, found {:?}",
                self.pos,
                b as char,
                self.bytes.get(self.pos).map(|c| *c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, val: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(format!("byte {}: expected {word:?}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("in object: unexpected {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("in array: unexpected {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty char")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                    let _ = b;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

/// Parse a report previously written by [`to_json`].
pub fn from_json(text: &str) -> Result<BenchReport, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = p.value()?;
    let schema_version = root.num("schema_version")? as u64;
    let Some(Value::Arr(rows)) = root.get("scenarios") else {
        return Err("missing \"scenarios\" array".to_string());
    };
    let mut scenarios = Vec::with_capacity(rows.len());
    for row in rows {
        let mut wire = [0.0f64; 4];
        if let Some(Value::Arr(vals)) = row.get("cp_wire_by_class_s") {
            for (slot, v) in wire.iter_mut().zip(vals) {
                if let Value::Num(x) = v {
                    *slot = *x;
                }
            }
        }
        scenarios.push(ScenarioReport {
            name: row.str("name")?.to_string(),
            ranks: row.num("ranks")? as u64,
            // Absent before v3: standing-scenario defaults.
            mode: row.str("mode").unwrap_or("standing").to_string(),
            fabric: row.str("fabric").unwrap_or("").to_string(),
            bodies: row.num("bodies").unwrap_or(0.0) as u64,
            scaling_efficiency: row.num("scaling_efficiency").unwrap_or(0.0),
            end_vtime_s: row.num("end_vtime_s")?,
            interactions: row.num("interactions")? as u64,
            interactions_per_s: row.num("interactions_per_s")?,
            availability: row.num("availability")?,
            deterministic: row.bool("deterministic")?,
            cp_total_s: row.num("cp_total_s")?,
            cp_work_s: row.num("cp_work_s")?,
            cp_wire_s: row.num("cp_wire_s")?,
            cp_wait_s: row.num("cp_wait_s")?,
            cp_wire_by_class_s: wire,
            dominant_wire: row.str("dominant_wire")?.to_string(),
            parallel_efficiency: row.num("parallel_efficiency")?,
            load_balance: row.num("load_balance")?,
            comm_efficiency: row.num("comm_efficiency")?,
            transfer_efficiency: row.num("transfer_efficiency")?,
            serialization_efficiency: row.num("serialization_efficiency")?,
            // Absent in v1 files; default 0 so a stale baseline parses
            // and the comparator reports the schema drift instead of a
            // parse error.
            queries: row.num("queries").unwrap_or(0.0) as u64,
            queries_per_s: row.num("queries_per_s").unwrap_or(0.0),
            query_p50_s: row.num("query_p50_s").unwrap_or(0.0),
            query_p95_s: row.num("query_p95_s").unwrap_or(0.0),
            query_p99_s: row.num("query_p99_s").unwrap_or(0.0),
            // Absent before v4: no store claim.
            store_write_mb_s: row.num("store_write_mb_s").unwrap_or(0.0),
            store_read_mb_s: row.num("store_read_mb_s").unwrap_or(0.0),
            incremental_ratio: row.num("incremental_ratio").unwrap_or(0.0),
        });
    }
    Ok(BenchReport {
        schema_version,
        scenarios,
    })
}

/// Diff `new` against the `baseline`; every returned string is a
/// regression beyond `max_regress` (a fraction: 0.05 = 5%). Empty
/// means pass. Improvements and new scenarios never fail. Besides
/// directional drift this flags the absolute failures: a scenario or
/// metric going missing (zero / non-finite where the baseline had a
/// value — "infinitely better" readings are broken folds, not wins)
/// and a scenario losing its byte-determinism claim, which would
/// otherwise silently exempt every timing metric.
pub fn compare(baseline: &BenchReport, new: &BenchReport, max_regress: f64) -> Vec<String> {
    let mut out = Vec::new();
    if baseline.schema_version != new.schema_version {
        out.push(format!(
            "schema version changed: baseline {} vs new {} (regenerate the baseline)",
            baseline.schema_version, new.schema_version
        ));
        return out;
    }
    for b in &baseline.scenarios {
        let Some(n) = new.scenario(&b.name) else {
            out.push(format!("scenario {:?} missing from new report", b.name));
            continue;
        };
        // The dominant wire class is the structural claim a contended
        // scenario exists to make (e.g. "the trunk is critical-path
        // dominant"); a flip is a regression regardless of timings.
        if b.dominant_wire != n.dominant_wire {
            out.push(format!(
                "{}: dominant_wire changed {:?} -> {:?}",
                b.name, b.dominant_wire, n.dominant_wire
            ));
        }
        // Losing the determinism claim would exempt every timing metric
        // below — that is itself a regression, not a free pass. (Gaining
        // determinism is an improvement; the baseline's noisy numbers
        // just aren't comparable yet.)
        if b.deterministic && !n.deterministic {
            out.push(format!(
                "{}: deterministic flipped true -> false (timing claims lost)",
                b.name
            ));
        }
        // Timing metrics are only comparable when both sides claim
        // byte-determinism; contended-fabric timings carry scheduling
        // noise well past any sensible tolerance.
        let timings_comparable = b.deterministic && n.deterministic;
        // (metric, baseline, new, higher_is_better, comparable)
        let checks = [
            (
                "end_vtime_s",
                b.end_vtime_s,
                n.end_vtime_s,
                false,
                timings_comparable,
            ),
            (
                "interactions_per_s",
                b.interactions_per_s,
                n.interactions_per_s,
                true,
                timings_comparable,
            ),
            (
                "parallel_efficiency",
                b.parallel_efficiency,
                n.parallel_efficiency,
                true,
                timings_comparable,
            ),
            ("availability", b.availability, n.availability, true, true),
            (
                "scaling_efficiency",
                b.scaling_efficiency,
                n.scaling_efficiency,
                true,
                timings_comparable,
            ),
            (
                "queries_per_s",
                b.queries_per_s,
                n.queries_per_s,
                true,
                timings_comparable,
            ),
            (
                "query_p99_s",
                b.query_p99_s,
                n.query_p99_s,
                false,
                timings_comparable,
            ),
            // A byte ratio, not a timing: deterministic even on noisy
            // fabrics, so always comparable.
            (
                "incremental_ratio",
                b.incremental_ratio,
                n.incremental_ratio,
                true,
                true,
            ),
        ];
        for (metric, old, newv, higher_better, comparable) in checks {
            // A metric that vanished — NaN, or zero where the baseline
            // had a value — fails regardless of direction or noise:
            // tolerance explains drift, not absence. (NaN would also
            // sail through the comparisons below, which are all false.)
            if !newv.is_finite() || (old > 0.0 && newv <= 0.0) {
                out.push(format!(
                    "{}: {metric} vanished: {old:.6e} -> {newv}",
                    b.name
                ));
                continue;
            }
            if !comparable {
                continue;
            }
            if old <= 0.0 {
                continue;
            }
            let regressed = if higher_better {
                newv < old * (1.0 - max_regress)
            } else {
                newv > old * (1.0 + max_regress)
            };
            if regressed {
                let pct = (newv / old - 1.0) * 100.0;
                out.push(format!(
                    "{}: {metric} {old:.6e} -> {newv:.6e} ({pct:+.2}%, tolerance {:.2}%)",
                    b.name,
                    max_regress * 100.0
                ));
            }
        }
    }
    out
}

/// Resolve a floorable metric by name. Only ratio-style metrics (and
/// the throughput headline) make sense as absolute floors; timing
/// totals scale with scenario size and belong to `compare`.
fn metric_value(s: &ScenarioReport, metric: &str) -> Option<f64> {
    Some(match metric {
        "interactions_per_s" => s.interactions_per_s,
        "queries_per_s" => s.queries_per_s,
        "availability" => s.availability,
        "parallel_efficiency" => s.parallel_efficiency,
        "scaling_efficiency" => s.scaling_efficiency,
        "load_balance" => s.load_balance,
        "comm_efficiency" => s.comm_efficiency,
        "transfer_efficiency" => s.transfer_efficiency,
        "serialization_efficiency" => s.serialization_efficiency,
        "store_write_mb_s" => s.store_write_mb_s,
        "store_read_mb_s" => s.store_read_mb_s,
        "incremental_ratio" => s.incremental_ratio,
        _ => return None,
    })
}

/// A ratchet: each floor is `(scenario, metric, min)` and the metric
/// must hold at least `min` absolutely. `compare` bounds *drift*
/// against the previous report, so a big win can erode back one
/// sub-tolerance step at a time; a committed floor pins the level
/// itself. Returns one message per violated/unresolvable floor.
pub fn check_floors(r: &BenchReport, floors: &[(String, String, f64)]) -> Vec<String> {
    let mut out = Vec::new();
    for (scenario, metric, min) in floors {
        let Some(s) = r.scenario(scenario) else {
            out.push(format!(
                "floor {scenario}:{metric}: scenario missing from report"
            ));
            continue;
        };
        let Some(val) = metric_value(s, metric) else {
            out.push(format!("floor {scenario}:{metric}: unknown metric"));
            continue;
        };
        // `!(>=)` rather than `<` so a NaN reading also trips.
        if !(val >= *min) {
            out.push(format!(
                "{scenario}: {metric} {val:.6} below committed floor {min:.6}"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport::new(vec![ScenarioReport {
            name: "treecode16".to_string(),
            ranks: 16,
            mode: "standing".to_string(),
            fabric: String::new(),
            bodies: 192,
            scaling_efficiency: 0.0,
            end_vtime_s: 0.0062866896,
            interactions: 94640,
            interactions_per_s: 1.5e7,
            availability: 1.0,
            deterministic: true,
            cp_total_s: 0.0062866896,
            cp_work_s: 6.5e-4,
            cp_wire_s: 5.6e-3,
            cp_wait_s: 0.0,
            cp_wire_by_class_s: [0.0, 5.6e-3, 0.0, 0.0],
            dominant_wire: "intra".to_string(),
            parallel_efficiency: 0.06,
            load_balance: 1.0,
            comm_efficiency: 0.06,
            transfer_efficiency: 0.104,
            serialization_efficiency: 0.577,
            queries: 768,
            queries_per_s: 1.2e5,
            query_p50_s: 4.0e-5,
            query_p95_s: 1.1e-4,
            query_p99_s: 2.3e-4,
            store_write_mb_s: 210.0,
            store_read_mb_s: 430.0,
            incremental_ratio: 2.4,
        }])
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let text = to_json(&r);
        let back = from_json(&text).unwrap();
        assert_eq!(r, back);
        // And the writer is deterministic.
        assert_eq!(text, to_json(&back));
    }

    #[test]
    fn comparator_catches_injected_slowdown() {
        let base = sample();
        let mut slow = base.clone();
        slow.scenarios[0].end_vtime_s *= 1.30;
        slow.scenarios[0].interactions_per_s /= 1.30;
        let regressions = compare(&base, &slow, 0.05);
        assert_eq!(regressions.len(), 2, "{regressions:?}");
        assert!(regressions[0].contains("end_vtime_s"), "{regressions:?}");
        assert!(
            regressions[1].contains("interactions_per_s"),
            "{regressions:?}"
        );
    }

    #[test]
    fn comparator_passes_identical_and_improved() {
        let base = sample();
        assert!(compare(&base, &base, 0.05).is_empty());
        let mut fast = base.clone();
        fast.scenarios[0].end_vtime_s *= 0.5;
        fast.scenarios[0].interactions_per_s *= 2.0;
        assert!(compare(&base, &fast, 0.05).is_empty());
    }

    #[test]
    fn comparator_catches_query_service_regression() {
        let base = sample();
        let mut slow = base.clone();
        slow.scenarios[0].queries_per_s /= 1.30;
        slow.scenarios[0].query_p99_s *= 1.30;
        let r = compare(&base, &slow, 0.05);
        assert_eq!(r.len(), 2, "{r:?}");
        assert!(r[0].contains("queries_per_s"), "{r:?}");
        assert!(r[1].contains("query_p99_s"), "{r:?}");
        // And the throughput headline can be floored absolutely.
        let f = |v: f64| ("treecode16".to_string(), "queries_per_s".to_string(), v);
        assert!(check_floors(&base, &[f(1.0e5)]).is_empty());
        let r = check_floors(&base, &[f(2.0e5)]);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("below committed floor"), "{r:?}");
    }

    #[test]
    fn comparator_flags_missing_scenario_and_schema_drift() {
        let base = sample();
        let empty = BenchReport::new(vec![]);
        let r = compare(&base, &empty, 0.05);
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("missing"));

        let mut vnext = base.clone();
        vnext.schema_version += 1;
        let r = compare(&base, &vnext, 0.05);
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("schema version"), "{r:?}");
    }

    #[test]
    fn nondeterministic_scenarios_skip_timings_but_keep_structure() {
        let mut base = sample();
        base.scenarios[0].deterministic = false;
        base.scenarios[0].dominant_wire = "trunk".to_string();

        // 30% timing drift on a scenario marked non-deterministic is
        // scheduling noise, not a regression.
        let mut noisy = base.clone();
        noisy.scenarios[0].end_vtime_s *= 1.30;
        noisy.scenarios[0].parallel_efficiency /= 1.30;
        assert!(compare(&base, &noisy, 0.05).is_empty());

        // But the structural claims still bite: a dominant-wire flip
        // or an availability drop fails even without timings.
        let mut flipped = noisy.clone();
        flipped.scenarios[0].dominant_wire = "intra".to_string();
        let r = compare(&base, &flipped, 0.05);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("dominant_wire"), "{r:?}");

        let mut lossy = noisy.clone();
        lossy.scenarios[0].availability = 0.5;
        let r = compare(&base, &lossy, 0.05);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("availability"), "{r:?}");
    }

    #[test]
    fn comparator_flags_vanished_and_nonfinite_metrics() {
        let base = sample();
        let mut zeroed = base.clone();
        zeroed.scenarios[0].interactions_per_s = 0.0;
        let r = compare(&base, &zeroed, 0.05);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("vanished"), "{r:?}");

        let mut nan = base.clone();
        nan.scenarios[0].end_vtime_s = f64::NAN;
        let r = compare(&base, &nan, 0.05);
        assert!(
            r.iter()
                .any(|m| m.contains("end_vtime_s") && m.contains("vanished")),
            "{r:?}"
        );

        // A zeroed timing on a *non-deterministic* scenario still fails:
        // scheduling noise explains drift, not absence.
        let mut noisy_base = base.clone();
        noisy_base.scenarios[0].deterministic = false;
        let mut gone = noisy_base.clone();
        gone.scenarios[0].end_vtime_s = 0.0;
        let r = compare(&noisy_base, &gone, 0.05);
        assert!(r.iter().any(|m| m.contains("vanished")), "{r:?}");
    }

    #[test]
    fn comparator_flags_determinism_flip() {
        let base = sample();
        let mut flip = base.clone();
        flip.scenarios[0].deterministic = false;
        let r = compare(&base, &flip, 0.05);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("deterministic"), "{r:?}");
        // Gaining determinism is an improvement, not a regression.
        assert!(compare(&flip, &base, 0.05).is_empty());
    }

    #[test]
    fn floors_hold_pass_and_trip() {
        let base = sample();
        let f = |s: &str, m: &str, v: f64| (s.to_string(), m.to_string(), v);
        // At 0.06 parallel efficiency the committed floor of 0.05 holds.
        assert!(check_floors(&base, &[f("treecode16", "parallel_efficiency", 0.05)]).is_empty());
        // A floor above the reading trips with the level, not a delta.
        let r = check_floors(&base, &[f("treecode16", "parallel_efficiency", 0.12)]);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("below committed floor"), "{r:?}");
        // NaN readings trip rather than vacuously pass.
        let mut nan = base.clone();
        nan.scenarios[0].parallel_efficiency = f64::NAN;
        let r = check_floors(&nan, &[f("treecode16", "parallel_efficiency", 0.05)]);
        assert_eq!(r.len(), 1, "{r:?}");
        // Missing scenarios and unknown metrics are errors, not passes.
        let r = check_floors(&base, &[f("nope", "parallel_efficiency", 0.0)]);
        assert!(r[0].contains("missing"), "{r:?}");
        let r = check_floors(&base, &[f("treecode16", "not_a_metric", 0.0)]);
        assert!(r[0].contains("unknown metric"), "{r:?}");
    }

    #[test]
    fn non_finite_values_serialize_safely() {
        let mut r = sample();
        r.scenarios[0].cp_wait_s = f64::NAN;
        let text = to_json(&r);
        assert!(!text.contains("NaN"));
        assert_eq!(from_json(&text).unwrap().scenarios[0].cp_wait_s, 0.0);
    }

    #[test]
    fn pre_v3_files_parse_with_standing_defaults() {
        // A v2 writer never emitted the scaling columns; strip them from
        // a v3 serialization and the row must load with the standing
        // defaults rather than a parse error.
        let mut r = sample();
        r.schema_version = 2;
        let text: String = to_json(&r)
            .lines()
            .filter(|l| {
                ![
                    "\"mode\"",
                    "\"fabric\"",
                    "\"bodies\"",
                    "\"scaling_efficiency\"",
                ]
                .iter()
                .any(|k| l.trim_start().starts_with(k))
            })
            .map(|l| format!("{l}\n"))
            .collect();
        let back = from_json(&text).unwrap();
        assert_eq!(back.schema_version, 2);
        let s = &back.scenarios[0];
        assert_eq!(s.mode, "standing");
        assert_eq!(s.fabric, "");
        assert_eq!(s.bodies, 0);
        assert_eq!(s.scaling_efficiency, 0.0);
    }

    #[test]
    fn store_columns_are_compared_and_floorable() {
        let base = sample();
        // Shipping relatively more bytes per committed state is a
        // compression regression even when every timing is unchanged.
        let mut bloated = base.clone();
        bloated.scenarios[0].incremental_ratio = 1.1;
        let r = compare(&base, &bloated, 0.05);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("incremental_ratio"), "{r:?}");

        let f = |m: &str, v: f64| ("treecode16".to_string(), m.to_string(), v);
        assert!(check_floors(&base, &[f("incremental_ratio", 2.0)]).is_empty());
        let r = check_floors(&base, &[f("incremental_ratio", 3.0)]);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("below committed floor"), "{r:?}");
        assert!(check_floors(&base, &[f("store_write_mb_s", 100.0)]).is_empty());
        assert!(check_floors(&base, &[f("store_read_mb_s", 400.0)]).is_empty());

        // Files from before the store columns existed parse with the
        // no-claim default.
        let mut old = base.clone();
        old.schema_version = 3;
        let text: String = to_json(&old)
            .lines()
            .filter(|l| {
                ![
                    "\"store_write_mb_s\"",
                    "\"store_read_mb_s\"",
                    "\"incremental_ratio\"",
                ]
                .iter()
                .any(|k| l.trim_start().starts_with(k))
            })
            // The store columns were the row's tail: un-comma the new
            // last field, as the v3 writer did.
            .map(|l| {
                if l.trim_start().starts_with("\"query_p99_s\"") {
                    format!("{}\n", l.trim_end_matches(','))
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let back = from_json(&text).unwrap();
        assert_eq!(back.scenarios[0].incremental_ratio, 0.0);
        assert_eq!(back.scenarios[0].store_write_mb_s, 0.0);
    }

    #[test]
    fn scaling_efficiency_is_compared_and_floorable() {
        let mut base = sample();
        base.scenarios[0] = base.scenarios[0].clone().with_scaling("weak", "xbar", 1024);
        base.scenarios[0].scaling_efficiency = 0.8;
        assert_eq!(base.scenarios[0].mode, "weak");
        assert_eq!(base.scenarios[0].fabric, "xbar");
        assert_eq!(base.scenarios[0].bodies, 1024);

        let mut worse = base.clone();
        worse.scenarios[0].scaling_efficiency = 0.6;
        let r = compare(&base, &worse, 0.05);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("scaling_efficiency"), "{r:?}");

        let f = |v: f64| {
            (
                "treecode16".to_string(),
                "scaling_efficiency".to_string(),
                v,
            )
        };
        assert!(check_floors(&base, &[f(0.75)]).is_empty());
        let r = check_floors(&base, &[f(0.9)]);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("below committed floor"), "{r:?}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"schema_version\": 1}").is_err());
        assert!(from_json("{\"scenarios\": []}").is_err());
    }
}
