//! Run every table and figure regenerator in sequence (slow ones last).

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "figure1",
        "figure2",
        "figure3",
        "figure4",
        "figure5",
        "figure6",
        "reliability",
        "figure7",
        "figure8",
    ];
    for b in bins {
        println!("\n================= {b} =================\n");
        let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(b))
            .status()
            .expect("failed to run exhibit binary");
        assert!(status.success(), "{b} failed");
    }
}
