//! The scaling-curve exhibit (ISSUE PR 9): weak/strong treecode sweeps
//! over the two-switch Space Simulator fabric and an ideal crossbar.
//!
//!     cargo run --release -p bench --bin scaling_sweep
//!     cargo run --release -p bench --bin scaling_sweep -- \
//!         --max-ranks 64 --out BENCH_scaling.json --curves \
//!         --floor weak_xbar_64:scaling_efficiency:0.5
//!
//! Writes every curve point as one scenario row of a schema-v3
//! `BenchReport` JSON (the same format as the standing
//! `BENCH_report.json`, columns `mode`/`fabric`/`bodies`/
//! `scaling_efficiency` filled in) and prints a summary table. `--curves`
//! additionally prints each curve as a TSV series for plotting.
//! `--floor SCENARIO:METRIC:MIN` (repeatable) asserts an absolute
//! ratchet on the freshly swept report — CI pins the parallel and
//! scaling efficiency at the largest swept rank count — and the exit
//! code is nonzero when a floor breaks.
//!
//! Flags: `--max-ranks N` caps the rank list (CI runs the reduced 2→64
//! sweep), `--mode weak|strong|both` and `--fabric lam|xbar|both` select
//! curves, `--steps`, `--bodies-per-rank`, and `--strong-bodies` resize
//! the per-point work.

use bench::report::{check_floors, to_json};
use bench::scaling::{run_sweep, FabricKind, Mode, SweepConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: scaling_sweep [--out PATH] [--max-ranks N] [--steps N] \
[--bodies-per-rank N] [--strong-bodies N] [--mode weak|strong|both] \
[--fabric lam|xbar|both] [--curves] [--floor SCENARIO:METRIC:MIN]...";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SweepConfig::default();
    let mut out_path = "BENCH_scaling.json".to_string();
    let mut curves = false;
    let mut floors: Vec<(String, String, f64)> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut want = |what: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{a} wants {what}\n{USAGE}");
            }
            v
        };
        match a.as_str() {
            "--out" => match want("a path") {
                Some(p) => out_path = p,
                None => return ExitCode::from(2),
            },
            "--max-ranks" => match want("a count").and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cfg = cfg.capped(n),
                None => return ExitCode::from(2),
            },
            "--steps" => match want("a count").and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => cfg.steps = n,
                _ => return ExitCode::from(2),
            },
            "--bodies-per-rank" => match want("a count").and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.bodies_per_rank = n,
                _ => return ExitCode::from(2),
            },
            "--strong-bodies" => match want("a count").and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.strong_bodies = n,
                _ => return ExitCode::from(2),
            },
            "--mode" => match want("weak|strong|both").as_deref() {
                Some("weak") => cfg.modes = vec![Mode::Weak],
                Some("strong") => cfg.modes = vec![Mode::Strong],
                Some("both") => cfg.modes = vec![Mode::Weak, Mode::Strong],
                _ => return ExitCode::from(2),
            },
            "--fabric" => match want("lam|xbar|both").as_deref() {
                Some("lam") => cfg.fabrics = vec![FabricKind::Lam],
                Some("xbar") => cfg.fabrics = vec![FabricKind::Xbar],
                Some("both") => cfg.fabrics = vec![FabricKind::Lam, FabricKind::Xbar],
                _ => return ExitCode::from(2),
            },
            "--curves" => curves = true,
            "--floor" => {
                let spec = want("SCENARIO:METRIC:MIN").unwrap_or_default();
                let parts: Vec<&str> = spec.split(':').collect();
                match parts.as_slice() {
                    [s, m, v] => match v.parse::<f64>() {
                        Ok(min) => floors.push((s.to_string(), m.to_string(), min)),
                        Err(_) => {
                            eprintln!("--floor MIN must be numeric, got {spec:?}\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => {
                        eprintln!("--floor wants SCENARIO:METRIC:MIN, got {spec:?}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if cfg.ranks.is_empty() {
        eprintln!("--max-ranks left no rank counts to sweep\n{USAGE}");
        return ExitCode::from(2);
    }

    let report = run_sweep(&cfg);

    let rows: Vec<Vec<String>> = report
        .scenarios
        .iter()
        .map(|s| {
            vec![
                s.mode.clone(),
                s.fabric.clone(),
                s.ranks.to_string(),
                s.bodies.to_string(),
                format!("{:.6}", s.end_vtime_s),
                format!("{:.3e}", s.interactions_per_s),
                format!("{:.3}", s.parallel_efficiency),
                format!("{:.3}", s.scaling_efficiency),
                s.dominant_wire.clone(),
            ]
        })
        .collect();
    print!(
        "{}",
        bench::render_table(
            "scaling_sweep curves",
            &[
                "mode",
                "fabric",
                "ranks",
                "bodies",
                "end_vtime_s",
                "inter/s",
                "par_eff",
                "scal_eff",
                "dominant",
            ],
            &rows,
        )
    );
    if curves {
        for &mode in &cfg.modes {
            for &fabric in &cfg.fabrics {
                print!("{}", bench::scaling::render_curve(&report, mode, fabric));
            }
        }
    }

    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path} (schema v{})", report.schema_version);

    let broken = check_floors(&report, &floors);
    if broken.is_empty() {
        if !floors.is_empty() {
            println!("{} floor(s) held", floors.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("FLOOR VIOLATIONS ({}):", broken.len());
        for b in &broken {
            eprintln!("  {b}");
        }
        ExitCode::FAILURE
    }
}
