//! Table 4: 256-processor Class D NPB (Mops), SS vs ASCI Q.

use bench::{f, ratio, render_table};
use cluster::npb_run::{table4, table4_paper};

fn main() {
    let model = table4();
    let paper = table4_paper();
    let rows: Vec<Vec<String>> = model
        .iter()
        .zip(&paper)
        .map(|((n, ss, q), (_, pss, pq))| {
            vec![
                n.to_string(),
                f(*ss, 0),
                f(*pss, 0),
                ratio(*ss, *pss),
                f(*q, 0),
                f(*pq, 0),
                ratio(*q, *pq),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 4: 256-proc Class D NPB Mops — model vs paper (all predictions)",
            &["Bench", "SS model", "SS paper", "r", "Q model", "Q paper", "r"],
            &rows,
        )
    );
}
