//! Figure 3: Linpack on the Space Simulator — scaling, the two record
//! runs, TOP500 ranks, and the price/performance milestone.

use bench::render_series;
use cluster::linpack_run::{april_2003, figure3_series, october_2002};
use cluster::top500::{dollars_per_mflops, rank, List};

fn main() {
    let procs = [16, 32, 64, 128, 192, 224, 256, 288];
    let rows: Vec<Vec<f64>> = figure3_series(&procs)
        .into_iter()
        .map(|(p, mpich, lam)| vec![p as f64, mpich, lam])
        .collect();
    println!(
        "{}",
        render_series(
            "Figure 3: HPL Gflop/s vs processors",
            &["procs", "MPICH+ATLAS(2002)", "LAM+ATLAS350(2003)"],
            &rows,
        )
    );
    let oct = october_2002();
    let apr = april_2003();
    println!("# October 2002 run:  {oct:.1} Gflop/s (paper 665.1) — calibration point");
    println!("# April 2003 run:    {apr:.1} Gflop/s (paper 757.1) — prediction");
    println!(
        "# TOP500: rank {} on Nov 2002 list (paper #85)",
        rank(List::Nov2002, oct)
    );
    println!(
        "#         rank {} on Jun 2003 list (paper #88)",
        rank(List::Jun2003, apr)
    );
    println!(
        "#         757.1 would have ranked #{} on the Nov 2002 list (paper #69)",
        rank(List::Nov2002, 757.1)
    );
    println!(
        "# price/performance: {:.1} cents per Mflop/s (paper 63.9)",
        100.0 * dollars_per_mflops(483_855.0, apr)
    );
}
