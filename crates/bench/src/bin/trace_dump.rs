//! Dump the virtual-time trace of a small distributed treecode run.
//!
//! Runs the chaos harness on an ideal (contention-free) 16-port machine
//! with tracing on, then prints the merged world timeline in the three
//! export formats the `obs` crate provides:
//!
//! ```bash
//! cargo run --release -p bench --bin trace_dump             # summary + gantt
//! cargo run --release -p bench --bin trace_dump -- chrome   # trace_event JSON
//! cargo run --release -p bench --bin trace_dump -- gantt
//! cargo run --release -p bench --bin trace_dump -- summary
//! ```
//!
//! The `chrome` output loads in `chrome://tracing` / Perfetto: one row
//! per rank, span nesting preserved, timestamps in virtual microseconds.
//! Because the run uses `Machine::ideal` and a deterministic retransmit
//! plan, the bytes printed are identical on every invocation — the same
//! property the golden-trace tests in `crates/cluster/tests` pin down.

use cluster::chaos::{run_treecode_traced, ChaosConfig};
use hot::GravityConfig;
use msg::{FaultPlan, Machine, RetransmitConfig};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let ranks = 16;
    let machine = Machine::ideal(ranks as u32);
    let plan = FaultPlan::none(11).with_retransmit(RetransmitConfig::deterministic());
    let chaos = ChaosConfig {
        checkpoint_every: 2,
        ..ChaosConfig::default()
    };
    let cfg = GravityConfig {
        theta: 0.6,
        eps: 0.05,
        ..GravityConfig::default()
    };
    let bodies = hot::models::plummer(256, 42);
    let (_, report, trace) =
        run_treecode_traced(&machine, ranks, &plan, &chaos, bodies, &cfg, 4, 0.01);
    assert!(report.completed, "trace_dump run did not complete");
    let trace = trace.expect("completed traced run always yields a trace");

    match mode.as_str() {
        "chrome" => println!("{}", obs::export::chrome_trace_json(&trace)),
        "gantt" => println!("{}", obs::export::gantt(&trace, 100)),
        "summary" => println!("{}", obs::export::structural_summary(&trace)),
        _ => {
            println!("{}", obs::export::structural_summary(&trace));
            println!("{}", obs::export::gantt(&trace, 100));
            println!(
                "(re-run with `-- chrome` for chrome://tracing JSON; \
                 {} spans, {} ranks, virtual end {:.3} ms)",
                trace.size(),
                ranks,
                trace.end_time() * 1e3
            );
        }
    }
}
