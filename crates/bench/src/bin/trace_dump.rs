//! Dump the virtual-time trace of a small distributed treecode run, or
//! diff two previously captured artifacts.
//!
//! Runs the chaos harness on an ideal (contention-free) 16-port machine
//! with tracing on, then prints the merged world timeline in whichever
//! export formats are requested:
//!
//! ```bash
//! cargo run --release -p bench --bin trace_dump                # summary + gantt + analysis
//! cargo run --release -p bench --bin trace_dump -- --chrome    # trace_event JSON
//! cargo run --release -p bench --bin trace_dump -- --gantt
//! cargo run --release -p bench --bin trace_dump -- --summary
//! cargo run --release -p bench --bin trace_dump -- --analysis  # critical path + efficiency
//! cargo run --release -p bench --bin trace_dump -- --timeline-csv   # windowed series, CSV
//! cargo run --release -p bench --bin trace_dump -- --timeline-json  # windowed series, JSON
//! cargo run --release -p bench --bin trace_dump -- --sparkline      # text exhibit
//! ```
//!
//! Flags combine: `--summary --analysis` prints both, in flag order.
//! The `--chrome` output loads in `chrome://tracing` / Perfetto: one
//! row per rank, span nesting preserved, timestamps in virtual
//! microseconds. Because the run uses `Machine::ideal` and a
//! deterministic retransmit plan, the bytes printed are identical on
//! every invocation — the same property the golden-trace tests in
//! `crates/cluster/tests` pin down.
//!
//! Diff mode compares two structural summaries captured with
//! `--summary` (committed goldens work too) and names the top regressed
//! segments — per-phase span time, per-link-class critical-path wire
//! time, efficiency factors — exiting nonzero when anything regressed
//! beyond the tolerance:
//!
//! ```bash
//! trace_dump --diff old.summary new.summary --max-regress 5
//! ```
//!
//! The trace is validated with `check_invariants` before printing; a
//! malformed trace exits nonzero, so CI can use any `trace_dump`
//! invocation as a structural smoke test.

use cluster::chaos::{run_treecode_traced, ChaosConfig};
use hot::GravityConfig;
use msg::{FaultPlan, Machine, RetransmitConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: trace_dump [--summary] [--gantt] [--chrome] [--analysis] \
[--timeline-csv] [--timeline-json] [--sparkline]\n\
       trace_dump --diff OLD NEW [--max-regress PCT]";

/// Timeline window for the dump run; matches the golden harness so the
/// printed series lines up with the committed snapshot's grid.
const TIMELINE_WINDOW_S: f64 = 2.5e-4;

fn run_diff(args: &[String]) -> ExitCode {
    let (mut old, mut new, mut max_regress) = (None, None, 5.0f64);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_regress = v,
                None => {
                    eprintln!("--max-regress needs a numeric percent\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            _ if old.is_none() => old = Some(a.clone()),
            _ if new.is_none() => new = Some(a.clone()),
            _ => {
                eprintln!("unexpected diff argument {a:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(old), Some(new)) = (old, new) else {
        eprintln!("--diff needs OLD and NEW paths\n{USAGE}");
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let (old_text, new_text) = (read(&old), read(&new));
    let d = obs::diff_summaries(&old_text, &new_text);
    let (text, regressed) = obs::render_diff(&d, max_regress);
    print!("{text}");
    if regressed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--diff") {
        return run_diff(&args[1..]);
    }
    let mut modes = args;
    for m in &modes {
        if !matches!(
            m.as_str(),
            "--summary"
                | "--gantt"
                | "--chrome"
                | "--analysis"
                | "--timeline-csv"
                | "--timeline-json"
                | "--sparkline"
        ) {
            eprintln!("unknown flag {m:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    if modes.is_empty() {
        modes = vec![
            "--summary".to_string(),
            "--gantt".to_string(),
            "--analysis".to_string(),
        ];
    }

    let ranks = 16;
    let machine = Machine::ideal(ranks as u32);
    let plan = FaultPlan::none(11).with_retransmit(RetransmitConfig::deterministic());
    let chaos = ChaosConfig {
        checkpoint_every: 2,
        timeline_window_s: Some(TIMELINE_WINDOW_S),
        ..ChaosConfig::default()
    };
    let cfg = GravityConfig {
        theta: 0.6,
        eps: 0.05,
        ..GravityConfig::default()
    };
    let bodies = hot::models::plummer(256, 42);
    let (_, report, trace) =
        run_treecode_traced(&machine, ranks, &plan, &chaos, bodies, &cfg, 4, 0.01);
    assert!(report.completed, "trace_dump run did not complete");
    let trace = trace.expect("completed traced run always yields a trace");

    if let Err(e) = trace.check_invariants() {
        eprintln!("trace invariant violated: {e}");
        return ExitCode::FAILURE;
    }
    let timeline = obs::WorldTimeline::from_trace(&trace)
        .expect("timeline armed on every rank of the dump run");
    if let Err(e) = timeline.check_invariants(&trace) {
        eprintln!("timeline invariant violated: {e}");
        return ExitCode::FAILURE;
    }

    for mode in &modes {
        match mode.as_str() {
            "--chrome" => println!("{}", obs::export::chrome_trace_json(&trace)),
            "--gantt" => println!("{}", obs::export::gantt(&trace, 100)),
            "--summary" => println!("{}", obs::export::structural_summary(&trace)),
            "--analysis" => println!("{}", obs::analysis_report(&trace)),
            "--timeline-csv" => println!("{}", obs::timeline_csv(&timeline)),
            "--timeline-json" => println!("{}", obs::timeline_json(&timeline)),
            "--sparkline" => println!("{}", obs::sparkline(&timeline)),
            _ => unreachable!("flags validated above"),
        }
    }
    ExitCode::SUCCESS
}
