//! Dump the virtual-time trace of a small distributed treecode run.
//!
//! Runs the chaos harness on an ideal (contention-free) 16-port machine
//! with tracing on, then prints the merged world timeline in whichever
//! export formats are requested:
//!
//! ```bash
//! cargo run --release -p bench --bin trace_dump                # summary + gantt + analysis
//! cargo run --release -p bench --bin trace_dump -- --chrome    # trace_event JSON
//! cargo run --release -p bench --bin trace_dump -- --gantt
//! cargo run --release -p bench --bin trace_dump -- --summary
//! cargo run --release -p bench --bin trace_dump -- --analysis  # critical path + efficiency
//! ```
//!
//! Flags combine: `--summary --analysis` prints both, in flag order.
//! The `--chrome` output loads in `chrome://tracing` / Perfetto: one
//! row per rank, span nesting preserved, timestamps in virtual
//! microseconds. Because the run uses `Machine::ideal` and a
//! deterministic retransmit plan, the bytes printed are identical on
//! every invocation — the same property the golden-trace tests in
//! `crates/cluster/tests` pin down.
//!
//! The trace is validated with `check_invariants` before printing; a
//! malformed trace exits nonzero, so CI can use any `trace_dump`
//! invocation as a structural smoke test.

use cluster::chaos::{run_treecode_traced, ChaosConfig};
use hot::GravityConfig;
use msg::{FaultPlan, Machine, RetransmitConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: trace_dump [--summary] [--gantt] [--chrome] [--analysis]";

fn main() -> ExitCode {
    let mut modes: Vec<String> = std::env::args().skip(1).collect();
    for m in &modes {
        if !matches!(
            m.as_str(),
            "--summary" | "--gantt" | "--chrome" | "--analysis"
        ) {
            eprintln!("unknown flag {m:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    if modes.is_empty() {
        modes = vec![
            "--summary".to_string(),
            "--gantt".to_string(),
            "--analysis".to_string(),
        ];
    }

    let ranks = 16;
    let machine = Machine::ideal(ranks as u32);
    let plan = FaultPlan::none(11).with_retransmit(RetransmitConfig::deterministic());
    let chaos = ChaosConfig {
        checkpoint_every: 2,
        ..ChaosConfig::default()
    };
    let cfg = GravityConfig {
        theta: 0.6,
        eps: 0.05,
        ..GravityConfig::default()
    };
    let bodies = hot::models::plummer(256, 42);
    let (_, report, trace) =
        run_treecode_traced(&machine, ranks, &plan, &chaos, bodies, &cfg, 4, 0.01);
    assert!(report.completed, "trace_dump run did not complete");
    let trace = trace.expect("completed traced run always yields a trace");

    if let Err(e) = trace.check_invariants() {
        eprintln!("trace invariant violated: {e}");
        return ExitCode::FAILURE;
    }

    for mode in &modes {
        match mode.as_str() {
            "--chrome" => println!("{}", obs::export::chrome_trace_json(&trace)),
            "--gantt" => println!("{}", obs::export::gantt(&trace, 100)),
            "--summary" => println!("{}", obs::export::structural_summary(&trace)),
            "--analysis" => println!("{}", obs::analysis_report(&trace)),
            _ => unreachable!("flags validated above"),
        }
    }
    ExitCode::SUCCESS
}
