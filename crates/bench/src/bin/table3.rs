//! Table 3: 64-processor Class C NPB (Mops), SS vs ASCI Q.

use bench::{f, ratio, render_table};
use cluster::npb_run::{table3, table3_paper};

fn main() {
    let model = table3();
    let paper = table3_paper();
    let rows: Vec<Vec<String>> = model
        .iter()
        .zip(&paper)
        .map(|((n, ss, q), (_, pss, pq))| {
            vec![
                n.to_string(),
                f(*ss, 0),
                f(*pss, 0),
                ratio(*ss, *pss),
                f(*q, 0),
                f(*pq, 0),
                ratio(*q, *pq),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 3: 64-proc Class C NPB Mops — model vs paper",
            &["Bench", "SS model", "SS paper", "r", "Q model", "Q paper", "r"],
            &rows,
        )
    );
    println!("SS column calibrated; ASCI Q column is a prediction.");
    println!("Shape: ASCI Q wins everywhere except FT, where the SS wins (as measured).");
}
