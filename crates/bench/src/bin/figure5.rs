//! Figure 5: NPB Class C scaling — smaller problems scale worse, and LU
//! shows the super-linear L2 kink.

use bench::render_series;
use cluster::npb_run::scaling_series;
use kernels::npb::{Benchmark, Class};

fn main() {
    let procs = [1usize, 4, 16, 64, 256];
    let benches = [
        Benchmark::BT,
        Benchmark::SP,
        Benchmark::LU,
        Benchmark::MG,
        Benchmark::CG,
        Benchmark::FT,
        Benchmark::IS,
    ];
    let mut rows = Vec::new();
    for (i, &p) in procs.iter().enumerate() {
        let mut row = vec![p as f64];
        for b in benches {
            let series = scaling_series(b, Class::C, &procs);
            row.push(series[i].1);
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_series(
            "Figure 5: Class C Mop/s per processor vs processors",
            &["procs", "BT", "SP", "LU", "MG", "CG", "FT", "IS"],
            &rows,
        )
    );
    let lu = scaling_series(Benchmark::LU, Class::C, &[1, 64]);
    println!(
        "# LU L2 kink: {:.0} Mop/s/proc at 1 proc -> {:.0} at 64 procs (super-linear)",
        lu[0].1, lu[1].1
    );
}
