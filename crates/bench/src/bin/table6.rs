//! Table 6: historical performance of the treecode, 1993-2003.

use bench::{f, ratio, render_table};
use cluster::treecode_run::table6;

fn main() {
    let rows: Vec<Vec<String>> = table6()
        .iter()
        .map(|(name, procs, total, per, ptotal, pper)| {
            vec![
                name.to_string(),
                procs.to_string(),
                f(*total, 1),
                f(*ptotal, 1),
                ratio(*total, *ptotal),
                f(*per, 1),
                f(*pper, 1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 6: treecode throughput — model vs paper",
            &[
                "Machine",
                "Procs",
                "Gflop/s",
                "paper",
                "r",
                "Mflops/proc",
                "paper"
            ],
            &rows,
        )
    );
    println!("One constant (non-force fraction) calibrated on the Space Simulator row;");
    println!("every other machine is a prediction from its CPU kernel model + network.");
}
