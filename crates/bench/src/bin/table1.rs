//! Table 1: Space Simulator architecture and price (September 2002).

use bench::{f, render_table};
use nodesim::Bom;

fn main() {
    let bom = Bom::space_simulator();
    let rows: Vec<Vec<String>> = bom
        .items
        .iter()
        .map(|i| {
            vec![
                if i.qty > 0 {
                    i.qty.to_string()
                } else {
                    String::new()
                },
                if i.qty > 0 {
                    f(i.unit_price, 0)
                } else {
                    String::new()
                },
                f(i.extended(), 0),
                i.description.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 1: Space Simulator architecture and price (September 2002)",
            &["Qty", "Price", "Ext.", "Description"],
            &rows,
        )
    );
    println!("Total: ${}", f(bom.total(), 0));
    println!(
        "${} per node, {} Gflop/s peak per node",
        f(bom.per_node(), 0),
        f(bom.peak_per_node / 1e9, 2)
    );
    println!(
        "Network (NICs + switches): ${} per node ({}% of node cost)",
        f(bom.nic_and_switch_per_node(), 0),
        f(100.0 * bom.nic_and_switch_per_node() / bom.per_node(), 0)
    );
}
