//! §2.1: component failures — expected and Monte-Carlo vs the paper.

use bench::{f, render_table};
use nodesim::reliability::{ComponentClass, ReliabilityModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let m = ReliabilityModel::space_simulator();
    let mut rng = SmallRng::seed_from_u64(2003);
    let burn = m.simulate_burn_in(&mut rng);
    let oper = m.simulate_operation(&mut rng, 9);
    let paper_burn = [3u32, 6, 4, 6, 1, 0, 0];
    let paper_oper = [2u32, 16, 1, 3, 0, 1, 4];
    let rows: Vec<Vec<String>> = ComponentClass::ALL
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let eb = m.expected_burn_in()[i].1;
            let eo = m.expected_operational(9.0)[i].1;
            vec![
                c.name().to_string(),
                paper_burn[i].to_string(),
                f(eb, 1),
                burn.counts[i].to_string(),
                paper_oper[i].to_string(),
                f(eo, 1),
                oper.counts[i].to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Section 2.1: hardware failures, burn-in and nine months of operation",
            &[
                "Component",
                "paper BI",
                "E[BI]",
                "MC BI",
                "paper 9mo",
                "E[9mo]",
                "MC 9mo"
            ],
            &rows,
        )
    );
    println!(
        "Availability over 9 months (3 whole-cluster outages): {:.2}%",
        100.0 * m.availability(9.0)
    );
    println!(
        "SMART-predictable disk failures: ~{:.0}%",
        100.0 * m.smart_predictable_fraction()
    );
    println!("No CPU fans exist to fail: the Shuttle heat pipe eliminated them.");
}
