//! Table 5: the gravity micro-kernel across processors, libm vs Karp —
//! plus a real measurement on this host.

use bench::{f, render_table};
use kernels::gravity_kernel::KernelBench;
use nodesim::cpu_models::{table5_cpus, table5_paper_values};

fn main() {
    let cpus = table5_cpus();
    let paper = table5_paper_values();
    let mut rows: Vec<Vec<String>> = cpus
        .iter()
        .zip(&paper)
        .map(|(c, (_, plibm, pkarp))| {
            vec![
                c.name.to_string(),
                f(c.libm_mflops(), 1),
                f(*plibm, 1),
                f(c.karp_mflops(), 1),
                f(*pkarp, 1),
            ]
        })
        .collect();
    // A real run on this host for comparison.
    let kb = KernelBench::new(64, 2048, 1);
    let (libm, karp) = kb.measure(8);
    rows.push(vec![
        "this host (measured)".into(),
        f(libm, 1),
        "-".into(),
        f(karp, 1),
        "-".into(),
    ]);
    println!(
        "{}",
        render_table(
            "Table 5: gravity micro-kernel Mflop/s (38 flops/interaction)",
            &[
                "Processor",
                "libm model",
                "libm paper",
                "Karp model",
                "Karp paper"
            ],
            &rows,
        )
    );
    println!("CPU models: micro-architectural (pipelined flops/cycle + sqrt latency),");
    println!("fitted to the paper's measurements — see EXPERIMENTS.md.");
}
