//! Ablation studies for the design choices DESIGN.md calls out:
//! 1. Karp rsqrt vs libm sqrt in the force kernel (Table 5's axis);
//! 2. hashed cell addressing vs std::HashMap;
//! 3. deferred-walk latency hiding on vs off (virtual time);
//! 4. ABM batching vs eager single-request messages (virtual time);
//! 5. Barnes-Hut vs bmax MAC at matched accuracy;
//! 6. per-body walks vs group (interaction-list) walks;
//! 7. in-core vs out-of-core traversal (I/O accounting);
//! 8. fault injection: availability and restart overhead vs the §2.1
//!    failure rates, time-compressed (virtual time on the chaos harness);
//! 9. the latency-hiding 2x2: deferred walks on/off x adaptive ABM
//!    aggregation on/off on the 16-rank treecode (virtual time). Pass
//!    `--out PATH` to also write this exhibit to a file for CI to
//!    archive.

use hot::gravity::{GravityConfig, MacKind};
use hot::models::plummer;
use hot::parallel::{parallel_accelerations, ParallelConfig};
use hot::traverse::tree_accelerations;
use hot::tree::{Body, Tree};
use kernels::gravity_kernel::KernelBench;
use std::time::Instant;

fn split(bodies: &[Body], nranks: usize, rank: usize) -> Vec<Body> {
    bodies
        .iter()
        .enumerate()
        .filter(|(i, _)| i % nranks == rank)
        .map(|(_, b)| *b)
        .collect()
}

fn vtime_of(all: &[Body], ranks: usize, cfg: &ParallelConfig) -> f64 {
    let times = msg::run_with(
        msg::Machine::space_simulator(netsim::LibraryProfile::lam_homogeneous()),
        ranks,
        |c| {
            let mine = split(all, c.size(), c.rank());
            parallel_accelerations(c, mine, cfg).vtime
        },
    );
    times.into_iter().fold(0.0, f64::max)
}

/// The tentpole's 2x2: deferred-walk latency hiding x adaptive ABM
/// aggregation, on a 16-rank run of the ablation Plummer model. Virtual
/// seconds per cell, so the exhibit is host-independent.
fn overlap_exhibit(all: &[Body]) -> String {
    let cell = |latency_hiding: bool, adaptive: bool| {
        vtime_of(
            all,
            16,
            &ParallelConfig {
                latency_hiding,
                adaptive,
                ..Default::default()
            },
        )
    };
    let hide_adapt = cell(true, true);
    let hide_fixed = cell(true, false);
    let block_adapt = cell(false, true);
    let block_fixed = cell(false, false);
    let mut out = String::new();
    out.push_str(&format!(
        "overlap ablation: {} bodies, 16 ranks, virtual step seconds\n",
        all.len()
    ));
    out.push_str("                     adaptive ABM   eager batches\n");
    out.push_str(&format!(
        "  deferred walks     {hide_adapt:>12.6}   {hide_fixed:>13.6}\n"
    ));
    out.push_str(&format!(
        "  blocking walks     {block_adapt:>12.6}   {block_fixed:>13.6}\n"
    ));
    out.push_str(&format!(
        "  deferred+adaptive vs blocking+eager: x{:.2}\n",
        block_fixed / hide_adapt
    ));
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exhibit_out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out wants a path").clone());

    // 1. Karp vs libm (wall time on this host).
    let kb = KernelBench::new(64, 2048, 1);
    let (libm, karp) = kb.measure(8);
    println!("[1] gravity kernel on this host: libm {libm:.0} Mflop/s, Karp {karp:.0} Mflop/s");

    // 2. Hash table vs std HashMap for key -> cell lookups.
    let bodies = plummer(20_000, 3);
    let tree = Tree::build(bodies, 8);
    let keys: Vec<hot::Key> = tree.cells.iter().map(|c| c.key).collect();
    let t = Instant::now();
    let mut sum = 0u64;
    for _ in 0..50 {
        for k in &keys {
            sum = sum.wrapping_add(tree.map.get(*k).unwrap() as u64);
        }
    }
    let custom = t.elapsed().as_secs_f64();
    let std_map: std::collections::HashMap<u64, u32> =
        tree.map.iter().map(|(k, v)| (k.0, v)).collect();
    let t = Instant::now();
    for _ in 0..50 {
        for k in &keys {
            sum = sum.wrapping_add(*std_map.get(&k.0).unwrap() as u64);
        }
    }
    let std_t = t.elapsed().as_secs_f64();
    println!(
        "[2] {} lookups x50: KeyMap {:.1} ms vs std HashMap {:.1} ms (x{:.2}) [checksum {sum}]",
        keys.len(),
        custom * 1e3,
        std_t * 1e3,
        std_t / custom
    );

    // 3. Latency hiding on/off (virtual time on the simulated cluster).
    let all = plummer(3000, 11);
    let hide = vtime_of(
        &all,
        4,
        &ParallelConfig {
            latency_hiding: true,
            ..Default::default()
        },
    );
    let block = vtime_of(
        &all,
        4,
        &ParallelConfig {
            latency_hiding: false,
            ..Default::default()
        },
    );
    println!(
        "[3] deferred walks: virtual step {hide:.4} s hidden vs {block:.4} s blocking (x{:.2})",
        block / hide
    );

    // 4. ABM batch size sweep.
    print!("[4] ABM batch-size sweep (virtual seconds): ");
    for batch in [1usize, 8, 64, 512] {
        let t = vtime_of(
            &all,
            4,
            &ParallelConfig {
                batch,
                ..Default::default()
            },
        );
        print!("batch={batch}: {t:.4}  ");
    }
    println!();

    // 9. The latency-hiding 2x2 exhibit.
    {
        let exhibit = overlap_exhibit(&all);
        print!("[9] {exhibit}");
        if let Some(path) = &exhibit_out {
            std::fs::write(path, &exhibit).expect("write exhibit");
            println!("    wrote {path}");
        }
    }

    // 6. Walk strategy on a 100k Plummer model: the seed's per-body
    // scalar walk, the per-body SoA walk, and the group walk over the
    // SoA interaction-list engine — each with its interactions/s so the
    // group+SoA speedup is a reproducible number.
    {
        let bodies = plummer(100_000, 23);
        let tree = Tree::build(bodies, 16);
        let cfg = GravityConfig {
            theta: 0.6,
            eps: 0.01,
            ..Default::default()
        };
        let t = Instant::now();
        let mut s0 = hot::traverse::TraverseStats::default();
        let mut scalar_acc = Vec::with_capacity(tree.bodies.len());
        for i in 0..tree.bodies.len() {
            let (a, s) = hot::traverse::accel_on_scalar(&tree, i, &cfg);
            scalar_acc.push(a);
            s0.add(&s);
        }
        let per_body_scalar = t.elapsed().as_secs_f64();
        std::hint::black_box(&scalar_acc);
        let t = Instant::now();
        let (_, s1) = tree_accelerations(&tree, &cfg);
        let per_body = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let (_, s2) = hot::traverse::group_accelerations(&tree, &cfg);
        let grouped = t.elapsed().as_secs_f64();
        let rate = |ints: u64, secs: f64| ints as f64 / secs / 1e6;
        println!(
            "[6] walks on 100k bodies (interactions/s):\n    per-body scalar {:.0} ms, {} ints, {:.1} M/s ({} opens)\n    per-body SoA    {:.0} ms, {} ints, {:.1} M/s ({} opens)\n    group SoA       {:.0} ms, {} ints, {:.1} M/s ({} opens)\n    group+SoA speedup over per-body scalar: x{:.2}",
            per_body_scalar * 1e3,
            s0.interactions(),
            rate(s0.interactions(), per_body_scalar),
            s0.opened,
            per_body * 1e3,
            s1.interactions(),
            rate(s1.interactions(), per_body),
            s1.opened,
            grouped * 1e3,
            s2.interactions(),
            rate(s2.interactions(), grouped),
            s2.opened,
            rate(s2.interactions(), grouped) / rate(s0.interactions(), per_body_scalar)
        );
    }

    // 7. Out-of-core traversal I/O accounting.
    {
        let mut path = std::env::temp_dir();
        path.push(format!("ablation_ooc_{}.bin", std::process::id()));
        let bodies = plummer(5_000, 31);
        let store = hot::outofcore::OocStore::create(&path, bodies).unwrap();
        let file_kb = 5_000 * 72 / 1024;
        let ooc = hot::outofcore::OocGravity::build(store, 256, 512).unwrap();
        let cfg = GravityConfig {
            theta: 0.6,
            eps: 0.01,
            ..Default::default()
        };
        let t = Instant::now();
        let (_, stats) = ooc.accelerations(&cfg).unwrap();
        println!(
            "[7] out-of-core 5k bodies ({} kB file): {:.0} ms, read {} kB, {} loads, {} cache hits",
            file_kb,
            t.elapsed().as_secs_f64() * 1e3,
            stats.bytes_read / 1024,
            stats.chunk_loads,
            stats.cache_hits
        );
        std::fs::remove_file(&path).ok();
    }

    // 5. MAC comparison at matched cost.
    let bodies = plummer(5000, 17);
    let tree = Tree::build(bodies.clone(), 8);
    let exact = hot::direct::direct_accelerations(&tree.bodies, 0.01);
    for mac in [MacKind::BarnesHut, MacKind::BmaxMac] {
        let cfg = GravityConfig {
            theta: 0.6,
            eps: 0.01,
            mac,
            ..Default::default()
        };
        let t = Instant::now();
        let (acc, stats) = tree_accelerations(&tree, &cfg);
        let wall = t.elapsed().as_secs_f64();
        let mut num = 0.0;
        let mut den = 0.0;
        for (a, e) in acc.iter().zip(&exact) {
            for d in 0..3 {
                num += (a.acc[d] - e.acc[d]).powi(2);
            }
            den += e.acc[0].powi(2) + e.acc[1].powi(2) + e.acc[2].powi(2);
        }
        println!(
            "[5] {:?}: rms err {:.2e}, {} interactions, {:.0} ms",
            mac,
            (num / den).sqrt(),
            stats.interactions(),
            wall * 1e3
        );
    }

    // 8. Availability vs failure rate: the §2.1 reliability budget,
    // time-compressed onto a short virtual run. `accel` scales the
    // paper's monthly component rates; the harness reports how much of
    // the paid-for cluster time produced kept physics.
    {
        use cluster::chaos::{run_treecode, ChaosConfig};
        use msg::FaultPlan;

        let machine = msg::Machine::space_simulator(netsim::LibraryProfile::lam_homogeneous());
        let gcfg = GravityConfig {
            theta: 0.6,
            eps: 0.05,
            ..Default::default()
        };
        let chaos = ChaosConfig {
            checkpoint_every: 2,
            restart_penalty_s: 2e-3,
            max_attempts: 24,
            ..Default::default()
        };
        let ics = plummer(600, 99);
        let (_, clean) = run_treecode(
            &machine,
            8,
            &FaultPlan::none(1),
            &chaos,
            ics.clone(),
            &gcfg,
            8,
            0.01,
        );
        // The §2.1 rates are per component-month; a virtual run lasts
        // milliseconds. Sweep the time compression in physical units —
        // expected fatal node failures per rank over the run — and derive
        // the acceleration each point needs from the model itself.
        let model = nodesim::ReliabilityModel::space_simulator();
        let mut node_rate = 0.0;
        for c in &model.components {
            if c.class != nodesim::ComponentClass::SwitchPort {
                node_rate += c.population as f64 * c.monthly_rate;
            }
        }
        node_rate /= 294.0;
        println!(
            "[8] fault injection on an 8-rank treecode (clean run {:.4} vs, availability = kept/total):",
            clean.final_vtime
        );
        for lam in [0.0, 0.3, 1.0, 2.0] {
            let accel = lam * msg::fault::MONTH_S / (node_rate * clean.final_vtime);
            let plan = FaultPlan::paper_calibrated(&model, 8, clean.final_vtime, accel, 424242);
            let (_, r) = run_treecode(&machine, 8, &plan, &chaos, ics.clone(), &gcfg, 8, 0.01);
            println!(
                "    E[failures/rank] {lam:.1}: drop_p {:.3}  {}  restarts {}  availability {:.3}  lost {:.4} vs  restart-overhead {:.4} vs  retransmits {}  drops {}",
                plan.drop,
                if r.completed { "done" } else { "FAILED" },
                r.restarts,
                r.availability,
                r.lost_vtime,
                r.restart_overhead_s,
                r.retransmits,
                r.drops,
            );
        }
    }
}
