//! Figure 7: the cosmological production run — a scaled-down volume run
//! here, plus the full-scale accounting of the paper's 134M-particle
//! run (24 h on 250 processors, 1.5 TB saved, 10^16 flops).

use bench::render_series;
use cluster::io::{IoModel, ProductionRun};
use cluster::treecode_run::treecode_model;
use cluster::MachineSpec;
use cosmo::integrate::CosmoSimulation;
use cosmo::sphere::standard_problem;

fn main() {
    // Full-scale accounting (the paper's numbers).
    let run = ProductionRun::figure7();
    let io = IoModel::space_simulator(250);
    println!("# Figure 7 production-run accounting (134M particles, 700 steps, 250 procs)");
    println!(
        "#   average compute rate: {:.0} Gflop/s (paper 112)",
        run.average_gflops()
    );
    println!(
        "#   average I/O rate:     {:.0} MB/s (paper 417)",
        run.average_io_mbps()
    );
    println!(
        "#   peak parallel I/O:    {:.1} GB/s (paper ~7)",
        io.peak_rate() / 1e9
    );
    let (gf, _) = treecode_model(&MachineSpec::space_simulator(), 250, 134.0e6);
    println!("#   treecode model at 250 procs: {gf:.0} Gflop/s sustained-force rate");

    // Scaled-down actual run: structure formation in a spherical volume.
    let bodies = standard_problem(3000, 0.3, 7);
    let n = bodies.len();
    let mut sim = CosmoSimulation::new(bodies, 0.7, 0.01, 0.01);
    let mut rows = Vec::new();
    for step in 0..30 {
        if step % 5 == 0 {
            rows.push(vec![
                sim.sim.time,
                sim.scale_factor(),
                sim.clumping() * sim.scale_factor().powi(3),
            ]);
        }
        sim.step();
    }
    rows.push(vec![
        sim.sim.time,
        sim.scale_factor(),
        sim.clumping() * sim.scale_factor().powi(3),
    ]);
    println!(
        "{}",
        render_series(
            &format!("Scaled-down volume run ({n} particles): expansion + structure growth"),
            &["time", "scale_factor", "clumping x a^3"],
            &rows,
        )
    );
    println!("# interactions so far: {}", sim.stats().interactions());
}
