//! Table 7: Loki architecture and price (September 1996), plus the §5
//! Moore's-law comparison.

use bench::{f, render_table};
use nodesim::bom::moores_law_factor;
use nodesim::Bom;

fn main() {
    let bom = Bom::loki();
    let rows: Vec<Vec<String>> = bom
        .items
        .iter()
        .map(|i| {
            vec![
                if i.qty > 0 {
                    i.qty.to_string()
                } else {
                    String::new()
                },
                if i.qty > 0 {
                    f(i.unit_price, 0)
                } else {
                    String::new()
                },
                f(i.extended(), 0),
                i.description.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 7: Loki architecture and price (September 1996)",
            &["Qty", "Price", "Ext.", "Description"],
            &rows,
        )
    );
    println!(
        "Total: ${}  (${} per node)",
        f(bom.total(), 0),
        f(bom.per_node(), 0)
    );

    // §5: component price scaling vs Moore's law over the six years.
    let moore = moores_law_factor(6.0);
    let disk = (359.0 / 3.240) / (83.0 / 80.0);
    let mem = (235.0 * 64.0 / (16.0 * 128.0)) / (118.0 * 588.0 / (294.0 * 1024.0));
    println!(
        "\nSection 5 check — six years = {} Moore doublings (x{})",
        4,
        f(moore, 1)
    );
    println!(
        "  disk $/GB improvement: x{} ({}x beyond Moore)",
        f(disk, 0),
        f(disk / moore, 1)
    );
    println!(
        "  DRAM $/MB improvement: x{} ({}x beyond Moore)",
        f(mem, 0),
        f(mem / moore, 1)
    );
}
