//! Figure 1 (photo of the racks): rendered as a wiring schematic.

fn main() {
    println!("{}", cluster::rack::figure1_schematic());
}
