//! Table 2: benchmark sensitivity to CPU and memory clock scaling.
//! Model calibrated on the slow-mem column; slow-CPU and overclock are
//! predictions. Paper values in parentheses in EXPERIMENTS.md.

use bench::{f, render_table};
use nodesim::roofline::{table2_rows, ClockConfig};

fn main() {
    let rows: Vec<Vec<String>> = table2_rows()
        .iter()
        .map(|r| {
            let mut cells = vec![r.name.to_string()];
            for cfg in ClockConfig::TABLE2 {
                let v = r.score(cfg);
                let digits = if r.normal < 10.0 { 3 } else { 1 };
                if cfg.name == "Normal" {
                    cells.push(f(v, digits));
                } else {
                    cells.push(format!("{} ({})", f(v, digits), f(v / r.normal, 3)));
                }
            }
            cells
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 2: clock-scaling sensitivity (model; ratios to normal in parens)",
            &["Benchmark", "Normal", "Slow mem", "Slow CPU", "Overclock"],
            &rows,
        )
    );
    println!("STREAM rows in MB/s, NPB in Mop/s, SPEC in SPEC units, Linpack in Gflop/s.");
    println!("Memory fractions calibrated from the paper's slow-mem column only;");
    println!("the slow-CPU and overclock columns are model predictions.");
}
