//! Figure 6: the self-similar Morton curve (left) and a 2-D tree of
//! centrally condensed particles (right).

use hot::models::condensed_disc_2d;
use hot::morton::morton2d;
use hot::tree::{Body, Tree};

fn main() {
    // Left panel: the space-filling curve on an 8x8 grid, drawn by
    // visiting order.
    println!("# Figure 6 (left): Morton order on an 8x8 grid (visit order)");
    let curve = morton2d::curve(3);
    let mut grid = [[0usize; 8]; 8];
    for (order, (x, y)) in curve.iter().enumerate() {
        grid[*y as usize][*x as usize] = order;
    }
    for row in grid.iter().rev() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:2}")).collect();
        println!("  {}", cells.join(" "));
    }
    println!("\n# curve as (x, y) polyline for plotting:");
    for (x, y) in &curve {
        println!("{x}\t{y}");
    }

    // Right panel: quadtree cell boundaries of a condensed disc. We use
    // the 3-D tree with z = 0 and report x/y cell boxes at z mid-plane.
    let pts = condensed_disc_2d(2000, 42);
    let bodies: Vec<Body> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut b = Body::at([p[0], p[1], 0.0], 1.0);
            b.id = i as u64;
            b
        })
        .collect();
    let tree = Tree::build(bodies, 4);
    println!("\n# Figure 6 (right): tree cells (center_x, center_y, half) by level");
    let mut by_level = std::collections::BTreeMap::new();
    for c in &tree.cells {
        *by_level.entry(c.level()).or_insert(0) += 1;
        if c.is_leaf && c.level() <= 6 {
            println!("{:.4}\t{:.4}\t{:.4}", c.center[0], c.center[1], c.half);
        }
    }
    println!("# cells per level: {by_level:?}");
    println!(
        "# total cells: {} for {} bodies",
        tree.cells.len(),
        tree.bodies.len()
    );
}
