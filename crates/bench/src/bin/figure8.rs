//! Figure 8: angular-momentum distribution of the rotating core
//! collapse, measured just past bounce.

use bench::render_series;
use sph::collapse::{run_collapse, CollapseSetup};

fn main() {
    let setup = CollapseSetup {
        n_particles: 600,
        ..Default::default()
    };
    println!(
        "# Figure 8: rotating core collapse ({} particles)",
        setup.n_particles
    );
    println!("# running to bounce; this takes a couple of minutes...");
    let res = run_collapse(&setup, 500);
    println!(
        "# peak density: {:.1} (rho_nuc = {})",
        res.peak_density, setup.rho_nuc
    );
    println!(
        "# bounce at t = {:.3}, {} steps",
        res.bounce_time, res.steps
    );
    let bins = res.j_by_angle.len();
    let rows: Vec<Vec<f64>> = res
        .j_by_angle
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let theta = (i as f64 + 0.5) * 90.0 / bins as f64;
            vec![theta, *j]
        })
        .collect();
    println!(
        "{}",
        render_series(
            "mean |j_z| vs polar angle (0 = pole, 90 = equator)",
            &["theta_deg", "mean_jz"],
            &rows,
        )
    );
    println!(
        "# pole(15deg)/equator(15deg) specific angular momentum ratio: {:.4}",
        res.pole_to_equator
    );
    println!("# paper: 'the angular momentum in a 15 degree cone along the poles is");
    println!("# 2 orders of magnitude less than that in the equator'");
}
