//! The bench-trajectory harness (ISSUE PR 4).
//!
//! Default mode runs the standard scenarios — the golden 16-rank
//! treecode, the same run under injected faults (restart recovery and
//! detector-armed degraded-mode shard recovery), the 288-rank
//! bisection exchange on both the two-switch Space Simulator fabric and
//! an ideal crossbar, the 16-rank simulation-as-a-service query
//! engine under its standing client fleet, and the snapshot-store
//! commit/materialize cycle — folds each trace through
//! the critical-path and
//! efficiency analyses, and writes a schema-versioned
//! `BENCH_report.json` (see `bench::report` for the format).
//!
//!     cargo run -p bench --bin bench_report [-- --out PATH]
//!     cargo run -p bench --bin bench_report -- --compare BASELINE NEW \
//!         [--max-regress PCT] [--floor SCENARIO:METRIC:MIN]...
//!
//! Compare mode diffs two report files and exits nonzero if any metric
//! regressed beyond the tolerance (default 5%); CI runs it against the
//! committed baseline at the repo root. `--floor` (repeatable) adds an
//! absolute ratchet on the NEW report: the named metric must hold at
//! least MIN, so a hard-won level cannot erode back one sub-tolerance
//! step at a time.

use bench::report::{check_floors, compare, from_json, to_json, BenchReport, ScenarioReport};
use cluster::chaos::{run_treecode, run_treecode_traced, ChaosConfig};
use cluster::io::IoModel;
use cluster::{bisection_exchange_traced, golden_ics};
use hot::gravity::GravityConfig;
use hot::integrate::Simulation;
use msg::{FaultPlan, HeartbeatConfig, Machine, RetransmitConfig};
use netsim::LinkFault;
use obs::WorldTrace;
use std::process::ExitCode;
use store::{GenerationLog, RecordKind, StoreConfig};

const EXCHANGE_RANKS: usize = 288;
const EXCHANGE_BYTES: usize = 512 * 1024;
const EXCHANGE_ROUNDS: u32 = 4;

/// Horizon of the degraded-mode scenario. Long enough that the failure
/// detector's verdict latency (~158 heartbeat intervals of virtual
/// silence: suspicion threshold plus confirmation window) plus the lost
/// work since the last shard commit stays under a tenth of the run, so
/// the availability >= 0.90 ratchet measures recovery quality rather
/// than detection overhead.
const DEGRADED_STEPS: u64 = 128;

fn golden_chaos() -> ChaosConfig {
    ChaosConfig {
        checkpoint_every: 2,
        ..Default::default()
    }
}

fn golden_gravity() -> GravityConfig {
    GravityConfig {
        theta: 0.6,
        eps: 0.05,
        ..Default::default()
    }
}

fn clean_plan() -> FaultPlan {
    FaultPlan::none(11).with_retransmit(RetransmitConfig::deterministic())
}

fn fold(name: &str, trace: &WorldTrace, interactions: u64, availability: f64) -> ScenarioReport {
    let cp = obs::critical_path(trace);
    let eff = obs::efficiency(trace, &cp);
    ScenarioReport::from_trace(name, trace, &cp, &eff, interactions, availability)
}

/// The golden 16-rank treecode (same config as the committed trace
/// snapshot), fault-free. Returns the row plus its end time, which the
/// chaos scenario uses to place its crash mid-run.
fn treecode16() -> (ScenarioReport, f64) {
    let (_, report, trace) = run_treecode_traced(
        &Machine::ideal(16),
        16,
        &clean_plan(),
        &golden_chaos(),
        golden_ics(192, 42),
        &golden_gravity(),
        4,
        0.01,
    );
    assert!(report.completed, "treecode16 failed: {report:?}");
    let trace = trace.expect("traced run yields a trace");
    trace.check_invariants().expect("treecode16 invariants");
    let vtime = report.final_vtime;
    let interactions = trace.counter_total("walk.interactions");
    (
        fold("treecode16", &trace, interactions, report.availability),
        vtime,
    )
}

/// The same treecode under duplicate floods plus one guaranteed mid-run
/// crash: availability < 1, physics identical (the reliability tests
/// pin that; here we ledger the cost).
fn chaos16(clean_vtime: f64) -> ScenarioReport {
    let plan = clean_plan()
        .with_duplicate(0.25)
        .with_crash(5, 0.6 * clean_vtime);
    // Scale the reboot penalty to the bench's tiny virtual horizon so
    // availability reflects lost work + restart cost rather than being
    // swamped by the default (realistically huge) reboot constant.
    let chaos = ChaosConfig {
        restart_penalty_s: 0.3 * clean_vtime,
        ..golden_chaos()
    };
    let (_, report, trace) = run_treecode_traced(
        &Machine::ideal(16),
        16,
        &plan,
        &chaos,
        golden_ics(192, 42),
        &golden_gravity(),
        4,
        0.01,
    );
    assert!(report.completed, "chaos16 failed: {report:?}");
    assert!(report.restarts >= 1, "crash never fired: {report:?}");
    let trace = trace.expect("traced run yields a trace");
    let interactions = trace.counter_total("walk.interactions");
    fold("chaos16", &trace, interactions, report.availability)
}

/// The graceful-degradation scenario (ISSUE PR 7): failure detector
/// armed, per-rank checkpoint shards, one guaranteed mid-run crash,
/// a dead switch port that heals, and a permanently slow node. The
/// condemned rank must fail over from its own shard — zero world
/// restarts — with physics bit-identical to the fault-free control and
/// availability >= 0.90 (the CI ratchet).
fn chaos_degraded16() -> ScenarioReport {
    // Tight heartbeat cadence keeps verdict latency (suspicion floor +
    // confirmation aging, ~158 intervals of virtual silence) small
    // against the horizon. The confirmation window stays at its default
    // *count*: idle-warp aging advances one interval per hysteresis
    // window of polls, so the wall-clock grace against stalls is
    // measured in intervals and shrinking `every_s` does not erode it.
    let hb = HeartbeatConfig {
        every_s: 2.0e-5,
        ..Default::default()
    };
    let chaos = ChaosConfig {
        checkpoint_every: 4,
        // Spare-node failover on the bench's compressed horizon: scaled
        // like chaos16's restart penalty, but two orders smaller — the
        // whole point of shard recovery is that it is not a reboot.
        failover_penalty_s: 2.0e-4,
        ..Default::default()
    };
    // Fault-free control run: fixes the crash placement mid-run and
    // pins the degraded run's physics.
    let (clean_bodies, clean) = run_treecode(
        &Machine::ideal(16),
        16,
        &clean_plan(),
        &chaos,
        golden_ics(192, 42),
        &golden_gravity(),
        DEGRADED_STEPS,
        0.01,
    );
    assert!(
        clean.completed && clean.restarts == 0,
        "degraded control failed: {clean:?}"
    );
    let horizon = clean.final_vtime;
    let plan = FaultPlan::none(11)
        .with_heartbeat(hb)
        .with_crash(5, 0.55 * horizon)
        // A switch port dies for a window an order of magnitude shorter
        // than the verdict latency: suspicion may rise but must be
        // retracted once the port heals and retransmits flush through.
        .with_link_fault(LinkFault::dead(3, 0.30 * horizon, 0.30 * horizon + 1.0e-3))
        // One node behind a port at quarter speed for the whole run —
        // the health-weighted decomposition sheds work off it instead
        // of letting it pace every step.
        .with_link_fault(LinkFault::degraded(9, 0.0, 0.25));
    let (bodies, report, trace) = run_treecode_traced(
        &Machine::ideal(16),
        16,
        &plan,
        &chaos,
        golden_ics(192, 42),
        &golden_gravity(),
        DEGRADED_STEPS,
        0.01,
    );
    assert!(report.completed, "chaos_degraded16 failed: {report:?}");
    assert_eq!(
        report.restarts, 0,
        "degraded mode must never restart the world: {report:?}"
    );
    assert_eq!(
        report.shard_recoveries, 1,
        "exactly one shard failover expected: {report:?}"
    );
    assert!(report.diagnosis.is_none(), "diagnosed: {report:?}");
    // Recovery must reproduce the fault-free universe bit for bit.
    assert_eq!(bodies.len(), clean_bodies.len());
    for (d, c) in bodies.iter().zip(&clean_bodies) {
        assert_eq!(d.pos, c.pos, "degraded recovery changed the physics");
        assert_eq!(d.vel, c.vel, "degraded recovery changed the physics");
    }
    let trace = trace.expect("traced run yields a trace");
    let interactions = trace.counter_total("walk.interactions");
    let mut row = fold(
        "chaos_degraded16",
        &trace,
        interactions,
        report.availability,
    );
    // Verdict timing rides the retransmit timer and the poll cadence,
    // both wall-racy; the comparator pins only availability (floored)
    // and the structural facts asserted above.
    row.deterministic = false;
    row
}

/// The simulation-as-a-service scenario (ISSUE PR 8): the golden
/// 16-rank replicated universe advancing while each rank's open-loop
/// client fleet issues point/region/cone/kNN/time-travel queries,
/// answered from the shared per-tick spatial index and merged across
/// the rank partition. The headline is service throughput
/// (`queries_per_s`, floored in CI) plus client latency percentiles.
/// ICs come from the rand-free `golden_ics` so the committed workload
/// is platform-stable.
fn queries16() -> ScenarioReport {
    let qcfg = query::EngineConfig {
        gravity: golden_gravity(),
        dt: 0.05,
        steps: 4,
        checkpoint_every: 2,
        fleet: query::FleetConfig {
            per_rank: 64,
            ..query::FleetConfig::default()
        },
        ..query::EngineConfig::default()
    };
    let ics = golden_ics(192, 42);
    let (outs, trace) = msg::comm::run_observed(Machine::ideal(18), 16, move |comm| {
        query::run(comm, ics.clone(), &qcfg)
    });
    trace.check_invariants().expect("queries16 invariants");
    let mut answered = 0u64;
    let mut lats: Vec<f64> = Vec::new();
    for o in &outs {
        assert_eq!(o.stats.dup_replies, 0, "duplicate replies: {:?}", o.stats);
        assert_eq!(o.stats.unanswered, 0, "dropped queries: {:?}", o.stats);
        assert_eq!(o.stats.issued, o.stats.answered, "{:?}", o.stats);
        answered += o.stats.answered;
        lats.extend(o.replies.iter().map(|r| r.done_s - r.at_s));
    }
    lats.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| lats[((lats.len() - 1) as f64 * p) as usize];
    let mut row =
        fold("queries16", &trace, 0, 1.0).with_queries(answered, q(0.50), q(0.95), q(0.99));
    // Reply merge times race the threaded runner's delivery order, so
    // the virtual clock (and everything derived from it) carries noise;
    // answers and counters are pinned by the oracle tests and the
    // simcheck queries16 world, and the throughput level by the CI
    // `--floor queries16:queries_per_s` ratchet.
    row.deterministic = false;
    row
}

/// Commit cadence and horizon of the snapshot-store scenario: 17
/// commits over 32 steps spans two full frames at the default
/// `full_every = 8`, so the incremental ratio prices real chains, not
/// just the first full frame.
const STORE_STEPS: u64 = 32;
const STORE_COMMIT_EVERY: u64 = 2;

/// The snapshot-store scenario (ISSUE PR 10): the golden universe
/// evolves serially and commits every other step into a
/// [`GenerationLog`] — first frame full, the rest dirty-cell deltas.
/// Virtual I/O cost comes from the §4.3 local-disk model, so the
/// headline throughputs are *effective* state rates: a delta that
/// ships 1/3 of the bytes reads back at 3× the disk rate. The
/// `incremental_ratio` (full bytes over shipped bytes) is the
/// compression claim itself, floored in CI.
fn store_bench() -> ScenarioReport {
    let run_once = || {
        let mut sim = Simulation::new(golden_ics(192, 42), golden_gravity(), 0.01);
        let mut log = GenerationLog::new(StoreConfig::default(), 0);
        log.commit(0, &sim.bodies, &[]);
        for step in 1..=STORE_STEPS {
            sim.step();
            if step % STORE_COMMIT_EVERY == 0 {
                log.commit(step, &sim.bodies, &[]);
            }
        }
        log
    };
    let log = run_once();
    // The store's canonical-ordering claim, held at bench scale: the
    // same physics must commit byte-identical records on a second run.
    let again = run_once();
    let frames = |l: &GenerationLog| -> Vec<u8> {
        l.steps()
            .flat_map(|s| l.record(s).expect("committed").bytes().to_vec())
            .collect()
    };
    assert_eq!(
        frames(&log),
        frames(&again),
        "store commits are not byte-deterministic"
    );
    assert!(
        log.commit_bytes < log.full_bytes,
        "deltas never beat full frames: {} committed vs {} full",
        log.commit_bytes,
        log.full_bytes
    );

    let io = IoModel::space_simulator(16);
    // Write side: the log shipped `commit_bytes` to disk to persist
    // `full_bytes` worth of state.
    let write_s = io.snapshot_time(log.commit_bytes as f64);
    let write_mb_s = log.full_bytes as f64 / 1e6 / write_s;
    // Read side: materialize every generation cold; each read pays for
    // its chain (nearest full frame plus the deltas up to the step) and
    // delivers a full decoded state.
    let records: Vec<(u64, usize, bool)> = log
        .steps()
        .map(|s| {
            let r = log.record(s).expect("committed");
            let full = matches!(
                store::record_kind(r.bytes()).expect("committed record"),
                RecordKind::Full
            );
            (s, r.bytes().len(), full)
        })
        .collect();
    let mut read_bytes = 0u64;
    let mut delivered = 0u64;
    for (i, (s, _, _)) in records.iter().enumerate() {
        let base = records[..=i]
            .iter()
            .rposition(|(_, _, full)| *full)
            .expect("chains start full");
        read_bytes += records[base..=i]
            .iter()
            .map(|(_, len, _)| *len as u64)
            .sum::<u64>();
        let snap = log.materialize(*s).expect("pristine log materializes");
        delivered += snap.to_bytes().len() as u64;
    }
    let read_s = io.snapshot_time(read_bytes as f64);
    let read_mb_s = delivered as f64 / 1e6 / read_s;

    ScenarioReport {
        name: "store_bench".to_string(),
        ranks: 1,
        mode: "standing".to_string(),
        fabric: String::new(),
        bodies: 192,
        scaling_efficiency: 0.0,
        end_vtime_s: write_s + read_s,
        interactions: 0,
        interactions_per_s: 0.0,
        availability: 1.0,
        deterministic: true,
        cp_total_s: write_s + read_s,
        cp_work_s: 0.0,
        cp_wire_s: 0.0,
        cp_wait_s: 0.0,
        cp_wire_by_class_s: [0.0; 4],
        dominant_wire: "none".to_string(),
        parallel_efficiency: 0.0,
        load_balance: 0.0,
        comm_efficiency: 0.0,
        transfer_efficiency: 0.0,
        serialization_efficiency: 0.0,
        queries: 0,
        queries_per_s: 0.0,
        query_p50_s: 0.0,
        query_p95_s: 0.0,
        query_p99_s: 0.0,
        store_write_mb_s: 0.0,
        store_read_mb_s: 0.0,
        incremental_ratio: 0.0,
    }
    .with_store(
        write_mb_s,
        read_mb_s,
        log.full_bytes as f64 / log.commit_bytes as f64,
    )
}

/// 288-rank bisection exchange on the two-switch fabric: the scenario
/// whose report must name the 8 Gbit trunk as the dominant
/// critical-path resource.
fn bisection_trunk() -> ScenarioReport {
    let m = Machine::space_simulator_lam();
    let trace = bisection_exchange_traced(&m, EXCHANGE_RANKS, EXCHANGE_BYTES, EXCHANGE_ROUNDS);
    let mut row = fold("bisection288_trunk", &trace, 0, 1.0);
    // Contended-fabric transfers serialize in wall-clock arrival order,
    // so this scenario's timings vary run to run; the comparator pins
    // only the structural claim (dominant_wire == trunk).
    row.deterministic = false;
    row
}

/// The same exchange on an ideal crossbar: the control run — no trunk,
/// no contention.
fn bisection_xbar() -> ScenarioReport {
    let m = Machine::ideal(EXCHANGE_RANKS as u32);
    let trace = bisection_exchange_traced(&m, EXCHANGE_RANKS, EXCHANGE_BYTES, EXCHANGE_ROUNDS);
    fold("bisection288_xbar", &trace, 0, 1.0)
}

fn run_all() -> BenchReport {
    let (tc, vtime) = treecode16();
    eprintln!("ran treecode16: end {:.6}s", tc.end_vtime_s);
    let ch = chaos16(vtime);
    eprintln!(
        "ran chaos16: end {:.6}s availability {:.4}",
        ch.end_vtime_s, ch.availability
    );
    let dg = chaos_degraded16();
    eprintln!(
        "ran chaos_degraded16: end {:.6}s availability {:.4}",
        dg.end_vtime_s, dg.availability
    );
    let tr = bisection_trunk();
    eprintln!(
        "ran bisection288_trunk: end {:.6}s dominant {}",
        tr.end_vtime_s, tr.dominant_wire
    );
    let xb = bisection_xbar();
    eprintln!(
        "ran bisection288_xbar: end {:.6}s dominant {}",
        xb.end_vtime_s, xb.dominant_wire
    );
    let qs = queries16();
    eprintln!(
        "ran queries16: end {:.6}s {:.3e} queries/s p99 {:.6}s",
        qs.end_vtime_s, qs.queries_per_s, qs.query_p99_s
    );
    let st = store_bench();
    eprintln!(
        "ran store_bench: write {:.1} MB/s read {:.1} MB/s ratio {:.3}",
        st.store_write_mb_s, st.store_read_mb_s, st.incremental_ratio
    );
    BenchReport::new(vec![tc, ch, dg, tr, xb, qs, st])
}

fn summary_table(r: &BenchReport) -> String {
    let rows: Vec<Vec<String>> = r
        .scenarios
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.ranks.to_string(),
                format!("{:.6}", s.end_vtime_s),
                format!("{:.3e}", s.interactions_per_s),
                format!("{:.3e}", s.queries_per_s),
                format!("{:.3}", s.parallel_efficiency),
                format!("{:.3}", s.availability),
                s.dominant_wire.clone(),
            ]
        })
        .collect();
    bench::render_table(
        "bench_report scenarios",
        &[
            "scenario",
            "ranks",
            "end_vtime_s",
            "inter/s",
            "queries/s",
            "par_eff",
            "avail",
            "dominant",
        ],
        &rows,
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(i) = args.iter().position(|a| a == "--compare") {
        let (Some(base_path), Some(new_path)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: bench_report --compare BASELINE NEW [--max-regress PCT]");
            return ExitCode::from(2);
        };
        let max_regress = match args.iter().position(|a| a == "--max-regress") {
            Some(j) => match args.get(j + 1).and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) => pct / 100.0,
                None => {
                    eprintln!("--max-regress wants a percentage");
                    return ExitCode::from(2);
                }
            },
            None => 0.05,
        };
        let mut floors: Vec<(String, String, f64)> = Vec::new();
        for (j, a) in args.iter().enumerate() {
            if a != "--floor" {
                continue;
            }
            let spec = args.get(j + 1).map(String::as_str).unwrap_or("");
            let parts: Vec<&str> = spec.split(':').collect();
            let parsed = match parts.as_slice() {
                [s, m, v] => v.parse::<f64>().ok().map(|min| (*s, *m, min)),
                _ => None,
            };
            match parsed {
                Some((s, m, min)) => floors.push((s.to_string(), m.to_string(), min)),
                None => {
                    eprintln!("--floor wants SCENARIO:METRIC:MIN, got {spec:?}");
                    return ExitCode::from(2);
                }
            }
        }
        let load = |path: &str| -> Result<BenchReport, String> {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            from_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
        };
        let (base, new) = match (load(base_path), load(new_path)) {
            (Ok(b), Ok(n)) => (b, n),
            (b, n) => {
                for r in [b.err(), n.err()].into_iter().flatten() {
                    eprintln!("error: {r}");
                }
                return ExitCode::from(2);
            }
        };
        let mut regressions = compare(&base, &new, max_regress);
        regressions.extend(check_floors(&new, &floors));
        if regressions.is_empty() {
            println!(
                "OK: {} scenarios within {:.1}% of baseline, {} floor(s) held",
                base.scenarios.len(),
                max_regress * 100.0,
                floors.len()
            );
            return ExitCode::SUCCESS;
        }
        eprintln!("REGRESSIONS ({}):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }

    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("--out wants a path");
                return ExitCode::from(2);
            }
        },
        None => "BENCH_report.json".to_string(),
    };

    let report = run_all();
    print!("{}", summary_table(&report));
    let json = to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path} (schema v{})", report.schema_version);
    ExitCode::SUCCESS
}
