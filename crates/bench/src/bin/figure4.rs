//! Figure 4: NPB Class D scaling on the Space Simulator.

use bench::render_series;
use cluster::npb_run::scaling_series;
use kernels::npb::{Benchmark, Class};

fn main() {
    let procs = [16usize, 32, 64, 128, 256];
    let benches = [
        Benchmark::BT,
        Benchmark::SP,
        Benchmark::LU,
        Benchmark::MG,
        Benchmark::CG,
        Benchmark::FT,
    ];
    let mut rows = Vec::new();
    for (i, &p) in procs.iter().enumerate() {
        let mut row = vec![p as f64];
        for b in benches {
            let series = scaling_series(b, Class::D, &procs);
            row.push(series[i].1);
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_series(
            "Figure 4: Class D Mop/s per processor vs processors (flat = perfect scaling)",
            &["procs", "BT", "SP", "LU", "MG", "CG", "FT"],
            &rows,
        )
    );
}
