//! Figure 2: NetPIPE bandwidth vs message size for TCP and the MPI
//! libraries, plus the switch-characterization experiment of §3.1.

use bench::render_series;
use netsim::{netpipe_sweep, Fabric, LibraryProfile};

fn main() {
    let profiles = LibraryProfile::figure2_set();
    let sizes: Vec<usize> = (0..25).map(|i| 1usize << i).collect();
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut row = vec![n as f64];
        for p in &profiles {
            row.push(p.throughput_mbits(n));
        }
        rows.push(row);
    }
    let mut header = vec!["bytes"];
    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
    header.extend(names.iter());
    println!(
        "{}",
        render_series(
            "Figure 2: bandwidth (Mbit/s) vs message size",
            &header,
            &rows
        )
    );
    for p in &profiles {
        let pts = netpipe_sweep(p, 1, 16 << 20);
        println!(
            "# {}: latency {:.0} us, asymptote {:.1} Mbit/s",
            p.name,
            p.latency_s * 1e6,
            pts.last().unwrap().mbits
        );
    }
    // The §3.1 switch experiment.
    let fabric = Fabric::space_simulator(LibraryProfile::tcp());
    let agg = fabric.aggregate_pairs_mbits(16, 8 << 20, false);
    println!("\n# 16 cross-module pairs aggregate: {agg:.0} Mbit/s (paper: ~6000)");
}
