//! Shape acceptance for the scaling curves (ISSUE PR 9).
//!
//! The paper's Table 6 / Fig 7 claim is not a number but a *shape*:
//! efficiency holds inside one 16-port switch module (non-blocking
//! routes), then falls off once the allgather crosses the shared
//! module uplinks — and the control run on an ideal crossbar shows no
//! such knee, only the smooth Amdahl decay of a fixed problem. This
//! test sweeps the strong-scaling curve over ranks {8, 16, 32} on both
//! machines and pins the shape:
//!
//! * at 16 ranks (one module) the real fabric spends no critical-path
//!   time on uplinks and is within a whisker of the crossbar;
//! * at 32 ranks (two modules) the uplink appears on the real fabric's
//!   critical path, becomes its dominant wire class, and the efficiency
//!   knee opens against the crossbar control;
//! * the crossbar never leaves the `intra` class at any size.
//!
//! The trunk itself only enters past the chassis boundary (225+ ranks);
//! the full `scaling_sweep` bin covers that point (weak scaling at 288
//! ranks goes trunk-dominant), which is too heavy for tier-1 — the
//! mechanism (shared-capacity falloff past a topology boundary) is what
//! this test locks in.
//!
//! Contended-fabric timings carry wall-clock scheduling noise, so every
//! threshold here has several-x headroom over the measured values
//! (lam/xbar efficiency ratio at 32 ranks measures ~0.53; we assert
//! < 0.80).

use bench::scaling::{run_sweep, FabricKind, Mode, SweepConfig};
use obs::LinkClass;

#[test]
fn strong_scaling_falls_off_past_one_module_on_the_real_fabric_only() {
    let cfg = SweepConfig {
        ranks: vec![8, 16, 32],
        modes: vec![Mode::Strong],
        fabrics: vec![FabricKind::Lam, FabricKind::Xbar],
        steps: 2,
        strong_bodies: 768,
        ..Default::default()
    };
    let report = run_sweep(&cfg);
    assert_eq!(report.scenarios.len(), 6);
    let row = |fabric: &str, ranks: u64| {
        report
            .scenarios
            .iter()
            .find(|s| s.fabric == fabric && s.ranks == ranks)
            .unwrap_or_else(|| panic!("missing {fabric} row at {ranks} ranks"))
    };
    let uplink =
        |s: &bench::report::ScenarioReport| s.cp_wire_by_class_s[LinkClass::Uplink.index()];
    let trunk = |s: &bench::report::ScenarioReport| s.cp_wire_by_class_s[LinkClass::Trunk.index()];

    // Inside one module every route on the real fabric is non-blocking:
    // no uplink or trunk time on the critical path, intra-dominant.
    for ranks in [8, 16] {
        let lam = row("lam", ranks);
        assert_eq!(uplink(lam), 0.0, "uplink inside one module: {}", lam.name);
        assert_eq!(trunk(lam), 0.0, "trunk inside one chassis: {}", lam.name);
        assert_eq!(lam.dominant_wire, "intra", "{}", lam.name);
    }

    // Past one module the uplink appears and takes over the wire.
    let lam32 = row("lam", 32);
    assert!(uplink(lam32) > 0.0, "no uplink time at 32 ranks");
    assert_eq!(
        lam32.dominant_wire, "uplink",
        "{:?}",
        lam32.cp_wire_by_class_s
    );

    // The crossbar control never leaves the non-blocking class.
    for ranks in [8, 16, 32] {
        let xbar = row("xbar", ranks);
        assert_eq!(uplink(xbar), 0.0, "{}", xbar.name);
        assert_eq!(trunk(xbar), 0.0, "{}", xbar.name);
        assert_eq!(xbar.dominant_wire, "intra", "{}", xbar.name);
        assert!(xbar.deterministic, "crossbar timings are deterministic");
    }

    // The efficiency shape. Baselines (8 ranks, one module each) agree
    // across fabrics; at 32 ranks the real fabric has lost most of its
    // efficiency to the uplink while the crossbar only pays Amdahl.
    let eff = |fabric: &str, ranks: u64| row(fabric, ranks).scaling_efficiency;
    assert!(
        (eff("lam", 16) - eff("xbar", 16)).abs() < 0.25 * eff("xbar", 16),
        "one-module points should roughly agree: lam {} vs xbar {}",
        eff("lam", 16),
        eff("xbar", 16)
    );
    assert!(
        eff("lam", 32) < 0.80 * eff("xbar", 32),
        "no knee past one module: lam {} vs xbar {}",
        eff("lam", 32),
        eff("xbar", 32)
    );
    // And the knee is a falloff in absolute terms too: the real fabric
    // loses efficiency 16 -> 32 much faster than the control.
    let drop_lam = eff("lam", 16) / eff("lam", 32);
    let drop_xbar = eff("xbar", 16) / eff("xbar", 32);
    assert!(
        drop_lam > 1.25 * drop_xbar,
        "falloff not fabric-limited: lam drop {drop_lam} vs xbar drop {drop_xbar}"
    );
}

/// The full-chassis claim — weak scaling at 288 ranks goes
/// trunk-dominant — costs minutes of contended-fabric simulation, so it
/// is ignored in tier-1 and exercised via the `scaling_sweep` bin (CI's
/// scaling job sweeps to 64; the committed exhibit documents 288).
#[test]
#[ignore = "minutes of contended-fabric simulation; run with --ignored"]
fn weak_scaling_past_the_chassis_goes_trunk_dominant() {
    let cfg = SweepConfig {
        ranks: vec![288],
        modes: vec![Mode::Weak],
        fabrics: vec![FabricKind::Lam],
        steps: 2,
        bodies_per_rank: 24,
        ..Default::default()
    };
    let report = run_sweep(&cfg);
    let s = &report.scenarios[0];
    assert_eq!(s.dominant_wire, "trunk", "{:?}", s.cp_wire_by_class_s);
    assert!(s.cp_wire_by_class_s[obs::LinkClass::Trunk.index()] > 0.0);
}
