//! The observability overhead guard: the instrumented gravity
//! micro-kernel with [`obs::NullSink`] must run within 2% of the plain
//! kernel. `NullSink`'s hooks are inlined empty functions, so the
//! instrumented build *is* the uninstrumented build — this test holds
//! the compiler (and future instrumentation changes) to that.
//!
//! The strict budget is asserted only in optimized builds: in debug
//! builds nothing is inlined and the comparison would measure the
//! unoptimized call overhead, not the contract. CI runs this test with
//! `--release` (see the observability job), where the guard bites.

use kernels::gravity_kernel::KernelBench;
use std::hint::black_box;
use std::time::Instant;

/// Min-of-N timing: the minimum over repetitions estimates the noise
/// floor far more stably than the mean under CI scheduling jitter.
fn min_time_s(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0.0f64;
    for _ in 0..reps {
        let t = Instant::now();
        sink += f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    assert!(sink.is_finite());
    best
}

#[test]
fn null_sink_overhead_is_within_budget() {
    let bench = KernelBench::new(48, 1536, 9);
    let reps = 25;
    // Warm up caches and frequency scaling before timing either side.
    black_box(bench.run_karp());
    black_box(bench.run_karp_observed(&mut obs::NullSink));

    let plain = min_time_s(reps, || black_box(bench.run_karp()).pot);
    let nulled = min_time_s(reps, || {
        black_box(bench.run_karp_observed(&mut obs::NullSink)).pot
    });
    let ratio = nulled / plain;
    eprintln!("overhead guard: plain {plain:.3e}s nulled {nulled:.3e}s ratio {ratio:.4}");

    if cfg!(debug_assertions) {
        // Unoptimized build: the hooks are real calls; only sanity-check
        // that instrumentation is not catastrophically expensive here.
        assert!(ratio < 3.0, "debug-build ratio {ratio}");
        return;
    }
    assert!(
        ratio <= 1.02,
        "NullSink overhead {:.2}% exceeds the 2% budget (plain {plain:.3e}s, nulled {nulled:.3e}s)",
        (ratio - 1.0) * 100.0
    );
}

#[test]
fn enabled_sink_records_without_changing_results() {
    // The other side of the bargain: switching the sink on changes no
    // float anywhere.
    let bench = KernelBench::new(16, 256, 5);
    let mut rec = obs::Recorder::new(0, 1);
    let observed = bench.run_karp_observed(&mut rec);
    let plain = bench.run_karp();
    assert_eq!(observed.acc, plain.acc);
    assert_eq!(observed.pot, plain.pot);
    let tr = rec.finish(0.0);
    assert_eq!(
        tr.metrics.counter("kernel.interactions"),
        bench.interactions()
    );
}
