//! Message-passing collectives on the threaded substrate (wall time;
//! virtual-time behaviour is covered by the ablations binary).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("msg_collectives");
    g.sample_size(10);
    g.bench_function("allreduce_8ranks", |b| {
        b.iter(|| {
            let out = msg::run(8, |comm| comm.allreduce(comm.rank() as u64, |a, x| a + x));
            black_box(out[0])
        })
    });
    g.bench_function("alltoallv_8ranks", |b| {
        b.iter(|| {
            let out = msg::run(8, |comm| {
                let data: Vec<Vec<u64>> = (0..comm.size()).map(|d| vec![d as u64; 64]).collect();
                comm.alltoallv(data).len()
            });
            black_box(out[0])
        })
    });
    g.bench_function("sample_sort_8ranks_4k", |b| {
        b.iter(|| {
            let out = msg::run(8, |comm| {
                let local: Vec<u64> = (0..512u64)
                    .map(|i| i.wrapping_mul(2654435761).wrapping_add(comm.rank() as u64))
                    .collect();
                msg::sort::sample_sort(comm, local, |&k| k, 32).len()
            });
            black_box(out[0])
        })
    });
    g.finish();
}

criterion_group!(benches, collectives);
criterion_main!(benches);
