//! STREAM on the host (the real counterpart of Table 2's model rows).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kernels::stream;
use std::hint::black_box;

fn stream_kernels(c: &mut Criterion) {
    let n = 2_000_000; // 16 MB/array: past L2
    let a = vec![1.0f64; n];
    let mut bbuf = vec![2.0f64; n];
    let mut cbuf = vec![0.0f64; n];
    let mut g = c.benchmark_group("stream");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(16 * n as u64));
    g.bench_function("copy", |b| {
        b.iter(|| {
            stream::copy(&mut cbuf, &a);
            black_box(cbuf[n / 2])
        })
    });
    g.bench_function("scale", |b| {
        b.iter(|| {
            stream::scale(&mut bbuf, &cbuf, 3.0);
            black_box(bbuf[n / 2])
        })
    });
    g.throughput(Throughput::Bytes(24 * n as u64));
    g.bench_function("add", |b| {
        b.iter(|| {
            stream::add(&mut cbuf, &a, &bbuf);
            black_box(cbuf[n / 2])
        })
    });
    let mut abuf = vec![1.0f64; n];
    g.bench_function("triad", |b| {
        b.iter(|| {
            stream::triad(&mut abuf, &bbuf, &cbuf, 3.0);
            black_box(abuf[n / 2])
        })
    });
    g.finish();
}

criterion_group!(benches, stream_kernels);
criterion_main!(benches);
