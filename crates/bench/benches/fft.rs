//! The FFT behind NPB FT and the Zel'dovich initial conditions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernels::fft::{fft_inplace, Field3, C64};
use std::hint::black_box;

fn fft_1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_1d");
    for n in [1024usize, 16_384] {
        let data: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| {
                let mut x = d.clone();
                fft_inplace(&mut x, false);
                black_box(x[0])
            })
        });
    }
    g.finish();
}

fn fft_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_3d");
    g.sample_size(10);
    let n = 32;
    let mut f = Field3::zeros(n, n, n);
    for (i, v) in f.data.iter_mut().enumerate() {
        *v = C64::new((i as f64).sin(), 0.0);
    }
    g.throughput(Throughput::Elements((n * n * n) as u64));
    g.bench_function("32cubed", |b| {
        b.iter(|| {
            let mut x = f.clone();
            x.fft3(false);
            black_box(x.data[0])
        })
    });
    g.finish();
}

criterion_group!(benches, fft_1d, fft_3d);
criterion_main!(benches);
