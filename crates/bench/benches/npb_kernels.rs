//! The NPB kernel hearts: CG, MG V-cycle, IS sort, EP pairs, BT/SP line
//! solvers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kernels::blocksolve::{block_tridiag_solve, pentadiag_solve};
use kernels::cg::{cg_solve, Csr};
use kernels::ep::ep_kernel;
use kernels::is::{counting_sort, generate_keys};
use kernels::mg::{v_cycle, Grid};
use std::hint::black_box;

fn cg_bench(c: &mut Criterion) {
    let a = Csr::random_spd(5000, 10, 20.0, 1);
    let bvec = vec![1.0; 5000];
    let mut g = c.benchmark_group("npb_cg");
    g.sample_size(10);
    g.throughput(Throughput::Elements(a.nnz() as u64 * 25));
    g.bench_function("25_iterations", |b| {
        b.iter(|| black_box(cg_solve(&a, &bvec, 25, 0.0)))
    });
    g.finish();
}

fn mg_bench(c: &mut Criterion) {
    let n = 32;
    let mut f = Grid::zeros(n);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                f.set(x, y, z, ((x + y + z) as f64).sin());
            }
        }
    }
    f.remove_mean();
    let mut g = c.benchmark_group("npb_mg");
    g.sample_size(10);
    g.throughput(Throughput::Elements((n * n * n) as u64));
    g.bench_function("v_cycle_32cubed", |b| {
        b.iter(|| {
            let mut u = Grid::zeros(n);
            v_cycle(&mut u, &f, 2, 2);
            black_box(u.at(1, 1, 1))
        })
    });
    g.finish();
}

fn is_bench(c: &mut Criterion) {
    let keys = generate_keys(1 << 18, 1 << 15, 3);
    let mut g = c.benchmark_group("npb_is");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("counting_sort_256k", |b| {
        b.iter(|| black_box(counting_sort(&keys, 1 << 15)))
    });
    g.finish();
}

fn ep_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("npb_ep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("pairs_100k", |b| {
        b.iter(|| black_box(ep_kernel(100_000, 271_828_183)))
    });
    g.finish();
}

fn line_solvers(c: &mut Criterion) {
    let n: usize = 64;
    let mk = |seed: usize| -> [f64; 25] {
        let mut m = [0.1; 25];
        for i in 0..5 {
            m[i * 5 + i] = 8.0 + seed as f64 * 0.01;
        }
        m
    };
    let a: Vec<[f64; 25]> = (0..n).map(&mk).collect();
    let bb: Vec<[f64; 25]> = (0..n).map(|i| mk(i + 7)).collect();
    let cc: Vec<[f64; 25]> = (0..n).map(|i| mk(i + 13)).collect();
    let r = vec![[1.0; 5]; n];
    let mut g = c.benchmark_group("line_solvers");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("bt_block_tridiag_64", |b| {
        b.iter(|| black_box(block_tridiag_solve(&a, &bb, &cc, &r)))
    });
    let e = vec![0.1; n];
    let cband = vec![-1.0; n];
    let d = vec![6.0; n];
    let aband = vec![-1.0; n];
    let fband = vec![0.1; n];
    let rhs = vec![1.0; n];
    g.bench_function("sp_pentadiag_64", |b| {
        b.iter(|| black_box(pentadiag_solve(&e, &cband, &d, &aband, &fband, &rhs)))
    });
    g.finish();
}

criterion_group!(
    benches,
    cg_bench,
    mg_bench,
    is_bench,
    ep_bench,
    line_solvers
);
criterion_main!(benches);
