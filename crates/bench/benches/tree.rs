//! Tree construction and the hashed cell lookup (the "H" of HOT).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hot::hash::KeyMap;
use hot::models::plummer;
use hot::tree::Tree;
use std::collections::HashMap;
use std::hint::black_box;

fn tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    g.sample_size(10);
    // 5k stays on the serial key+sort path; 20k and 100k cross the
    // parallel threshold (PAR_BUILD_MIN) in Tree::build_in.
    for n in [5_000usize, 20_000, 100_000] {
        let bodies = plummer(n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &bodies, |b, bd| {
            b.iter(|| black_box(Tree::build(bd.clone(), 8)))
        });
    }
    g.finish();
}

/// The phase the parallel build accelerates in isolation: Morton key
/// computation + stable sort, serial vs rayon. Both orders are
/// identical (stable sorts), so this is a pure-throughput comparison.
fn key_sort(c: &mut Criterion) {
    use hot::morton::BBox;
    use rayon::prelude::*;
    let n = 100_000usize;
    let bodies = plummer(n, 11);
    let bbox = BBox::enclosing(bodies.iter().map(|b| b.pos));
    let mut g = c.benchmark_group("key_sort");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut keyed: Vec<(hot::Key, [f64; 3])> = bodies
                .iter()
                .map(|bd| (bbox.key_of(bd.pos), bd.pos))
                .collect();
            keyed.sort_by_key(|&(k, _)| k);
            black_box(keyed)
        })
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            let mut keyed: Vec<(hot::Key, [f64; 3])> = bodies
                .par_iter()
                .map(|bd| (bbox.key_of(bd.pos), bd.pos))
                .collect();
            keyed.par_sort_by_key(|&(k, _)| k);
            black_box(keyed)
        })
    });
    g.finish();
}

fn hash_lookup(c: &mut Criterion) {
    let tree = Tree::build(plummer(20_000, 9), 8);
    let keys: Vec<hot::Key> = tree.cells.iter().map(|c| c.key).collect();
    let std_map: HashMap<u64, u32> = tree.map.iter().map(|(k, v)| (k.0, v)).collect();
    let custom: KeyMap = {
        let mut m = KeyMap::with_capacity(keys.len());
        for (k, v) in tree.map.iter() {
            m.insert(k, v);
        }
        m
    };
    let mut g = c.benchmark_group("key_lookup");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("hot_keymap", |b| {
        b.iter(|| {
            let mut s = 0u64;
            for k in &keys {
                s = s.wrapping_add(custom.get(*k).unwrap() as u64);
            }
            black_box(s)
        })
    });
    g.bench_function("std_hashmap", |b| {
        b.iter(|| {
            let mut s = 0u64;
            for k in &keys {
                s = s.wrapping_add(*std_map.get(&k.0).unwrap() as u64);
            }
            black_box(s)
        })
    });
    g.finish();
}

criterion_group!(benches, tree_build, key_sort, hash_lookup);
criterion_main!(benches);
