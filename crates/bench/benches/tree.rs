//! Tree construction and the hashed cell lookup (the "H" of HOT).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hot::hash::KeyMap;
use hot::models::plummer;
use hot::tree::Tree;
use std::collections::HashMap;
use std::hint::black_box;

fn tree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    g.sample_size(10);
    for n in [5_000usize, 20_000] {
        let bodies = plummer(n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &bodies, |b, bd| {
            b.iter(|| black_box(Tree::build(bd.clone(), 8)))
        });
    }
    g.finish();
}

fn hash_lookup(c: &mut Criterion) {
    let tree = Tree::build(plummer(20_000, 9), 8);
    let keys: Vec<hot::Key> = tree.cells.iter().map(|c| c.key).collect();
    let std_map: HashMap<u64, u32> = tree.map.iter().map(|(k, v)| (k.0, v)).collect();
    let custom: KeyMap = {
        let mut m = KeyMap::with_capacity(keys.len());
        for (k, v) in tree.map.iter() {
            m.insert(k, v);
        }
        m
    };
    let mut g = c.benchmark_group("key_lookup");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("hot_keymap", |b| {
        b.iter(|| {
            let mut s = 0u64;
            for k in &keys {
                s = s.wrapping_add(custom.get(*k).unwrap() as u64);
            }
            black_box(s)
        })
    });
    g.bench_function("std_hashmap", |b| {
        b.iter(|| {
            let mut s = 0u64;
            for k in &keys {
                s = s.wrapping_add(*std_map.get(&k.0).unwrap() as u64);
            }
            black_box(s)
        })
    });
    g.finish();
}

criterion_group!(benches, tree_build, hash_lookup);
criterion_main!(benches);
