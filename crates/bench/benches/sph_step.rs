//! One SPH timestep (density + forces + gravity) — the supernova code's
//! unit of work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sph::collapse::{rotating_core, CollapseSetup};
use sph::SphSimulation;
use std::hint::black_box;

fn sph_step(c: &mut Criterion) {
    let setup = CollapseSetup {
        n_particles: 500,
        ..Default::default()
    };
    let mut g = c.benchmark_group("sph");
    g.sample_size(10);
    g.throughput(Throughput::Elements(500));
    g.bench_function("collapse_step_500", |b| {
        b.iter_batched(
            || {
                let (parts, cfg) = rotating_core(&setup);
                SphSimulation::new(parts, cfg)
            },
            |mut sim| {
                sim.step();
                black_box(sim.max_density())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, sph_step);
criterion_main!(benches);
