//! The Table 5 axis: libm sqrt vs Karp rsqrt in the force inner loop,
//! plus the tree walk itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hot::gravity::GravityConfig;
use hot::models::plummer;
use hot::traverse::tree_accelerations;
use hot::tree::Tree;
use kernels::gravity_kernel::KernelBench;
use std::hint::black_box;

fn kernel_variants(c: &mut Criterion) {
    let kb = KernelBench::new(32, 1024, 1);
    let mut g = c.benchmark_group("gravity_kernel");
    g.throughput(Throughput::Elements(kb.interactions()));
    g.bench_function("libm_sqrt", |b| b.iter(|| black_box(kb.run_libm())));
    g.bench_function("karp_rsqrt", |b| b.iter(|| black_box(kb.run_karp())));
    g.bench_function("karp_batched4", |b| {
        b.iter(|| black_box(kb.run_karp_batched()))
    });
    g.finish();
}

fn tree_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_walk");
    g.sample_size(10);
    for n in [2_000usize, 8_000] {
        let tree = Tree::build(plummer(n, 5), 8);
        let cfg = GravityConfig {
            theta: 0.6,
            eps: 0.01,
            ..Default::default()
        };
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, t| {
            b.iter(|| black_box(tree_accelerations(t, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, kernel_variants, tree_walk);
criterion_main!(benches);
