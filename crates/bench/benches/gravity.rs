//! The Table 5 axis: libm sqrt vs Karp rsqrt in the force inner loop,
//! plus the tree walk itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hot::gravity::{self, Accel, GravityConfig};
use hot::models::plummer;
use hot::traverse::{accel_on_scalar, group_accelerations, tree_accelerations, TraverseStats};
use hot::tree::Tree;
use kernels::gravity_kernel::KernelBench;
use std::hint::black_box;

fn kernel_variants(c: &mut Criterion) {
    let kb = KernelBench::new(32, 1024, 1);
    let mut g = c.benchmark_group("gravity_kernel");
    g.throughput(Throughput::Elements(kb.interactions()));
    g.bench_function("libm_sqrt", |b| b.iter(|| black_box(kb.run_libm())));
    g.bench_function("karp_rsqrt", |b| b.iter(|| black_box(kb.run_karp())));
    g.bench_function("karp_batched4", |b| {
        b.iter(|| black_box(kb.run_karp_batched()))
    });
    g.finish();
}

/// Scalar p2p loop vs the SoA span kernels on one long interaction list
/// — the micro-kernel half of the walk-vectorization story.
fn span_kernels(c: &mut Criterion) {
    let n = 4096usize;
    let bodies = plummer(n, 3);
    let xs: Vec<f64> = bodies.iter().map(|b| b.pos[0]).collect();
    let ys: Vec<f64> = bodies.iter().map(|b| b.pos[1]).collect();
    let zs: Vec<f64> = bodies.iter().map(|b| b.pos[2]).collect();
    let ms: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    let tp = [3.0, -2.0, 1.0];
    let eps2 = 1e-4;
    let mut g = c.benchmark_group("span_kernels");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("p2p_scalar", |b| {
        b.iter(|| {
            let mut out = Accel::default();
            for i in 0..n {
                gravity::p2p(tp, bodies[i].pos, ms[i], eps2, &mut out);
            }
            black_box(out)
        })
    });
    g.bench_function("p2p_span", |b| {
        b.iter(|| {
            let mut out = Accel::default();
            gravity::p2p_span(tp, &xs, &ys, &zs, &ms, eps2, &mut out);
            black_box(out)
        })
    });
    g.bench_function("p2p_span_karp", |b| {
        b.iter(|| {
            let mut out = Accel::default();
            gravity::p2p_span_karp(tp, &xs, &ys, &zs, &ms, eps2, &mut out);
            black_box(out)
        })
    });
    g.finish();
}

/// The walk-strategy axis: per-body scalar walk (seed), per-body SoA
/// walk, and the group walk over the SoA ilist engine — throughput in
/// interactions/s so the ablation exhibit and this bench agree.
fn walk_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_walk");
    g.sample_size(10);
    for n in [2_000usize, 8_000] {
        let tree = Tree::build(plummer(n, 5), 16);
        let cfg = GravityConfig {
            theta: 0.6,
            eps: 0.01,
            ..Default::default()
        };
        // Throughput in interactions, measured once per variant.
        let per_body_int = tree_accelerations(&tree, &cfg).1.interactions();
        g.throughput(Throughput::Elements(per_body_int));
        g.bench_with_input(BenchmarkId::new("per_body_scalar", n), &tree, |b, t| {
            b.iter(|| {
                let mut stats = TraverseStats::default();
                let mut acc = Vec::with_capacity(t.bodies.len());
                for i in 0..t.bodies.len() {
                    let (a, s) = accel_on_scalar(t, i, &cfg);
                    acc.push(a);
                    stats.add(&s);
                }
                black_box((acc, stats))
            })
        });
        g.bench_with_input(BenchmarkId::new("per_body_span", n), &tree, |b, t| {
            b.iter(|| black_box(tree_accelerations(t, &cfg)))
        });
        let group_int = group_accelerations(&tree, &cfg).1.interactions();
        g.throughput(Throughput::Elements(group_int));
        g.bench_with_input(BenchmarkId::new("group_span", n), &tree, |b, t| {
            b.iter(|| black_box(group_accelerations(t, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, kernel_variants, span_kernels, walk_strategies);
criterion_main!(benches);
