//! Blocked LU with partial pivoting (the Linpack core of Figure 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernels::hpl::{hpl_flops, lu_factor, Mat};
use std::hint::black_box;

fn lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("hpl_lu");
    g.sample_size(10);
    for n in [128usize, 256] {
        let a = Mat::random(n, n as u64);
        g.throughput(Throughput::Elements(hpl_flops(n) as u64));
        g.bench_with_input(BenchmarkId::new("blocked_nb32", n), &a, |b, m| {
            b.iter(|| black_box(lu_factor(m.clone(), 32)))
        });
        g.bench_with_input(BenchmarkId::new("unblocked", n), &a, |b, m| {
            b.iter(|| black_box(lu_factor(m.clone(), 1)))
        });
    }
    g.finish();
}

criterion_group!(benches, lu);
criterion_main!(benches);
