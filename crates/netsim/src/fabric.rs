//! Contention-aware message transfer over the switch fabric.
//!
//! A [`Fabric`] combines a [`SwitchFabric`] topology with a
//! [`LibraryProfile`] and tracks, per shared resource (module uplinks and
//! the inter-switch trunk), the virtual time until which the resource is
//! busy. A transfer's end-to-end time is the library model's latency +
//! serialization (the NIC is the bottleneck at 779 Mbit/s), plus any
//! queueing delay accrued while crossing busy backbone segments.
//!
//! The busy-until bookkeeping makes aggregate throughput across a shared
//! segment saturate at the segment's capacity — exactly the behaviour the
//! paper measures with its hypercube-pairs MPI test ("with 16 processors on
//! one module sending to 16 processors on another module, the total
//! throughput was about 6000 Mbits").

use crate::profiles::LibraryProfile;
use crate::switch::{Resource, SwitchFabric};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Result of scheduling one message through the fabric.
///
/// A non-finite `arrival` means the message was eaten by a dead link
/// (see [`LinkFault`]); the bytes were still clocked onto the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// Virtual time at which the last byte reaches the receiver's NIC.
    pub arrival: f64,
    /// Of the total, how much was queueing behind other traffic.
    pub queued: f64,
}

impl TransferOutcome {
    /// Did the message actually reach the destination NIC?
    pub fn delivered(&self) -> bool {
        self.arrival.is_finite()
    }
}

/// A fault on one switch port (or its attached NIC/cable), active over a
/// virtual-time window. This is the executable form of the paper's §2.1
/// "soft errors on 4 ports of our gigabit switches": a degraded port
/// serializes slower (PHY-level retries), a dead port eats every packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Global fabric port the fault sits on (either endpoint matches).
    pub port: u32,
    /// Virtual time the fault appears.
    pub from: f64,
    /// Virtual time the fault is cured (firmware upgrade, reseated cable);
    /// `f64::INFINITY` for a permanent fault.
    pub until: f64,
    /// Remaining fraction of link speed: `0.0` kills the port outright,
    /// `0.25` stretches serialization by 4x.
    pub speed_factor: f64,
}

impl LinkFault {
    /// A port that is down for `[from, until)`.
    pub fn dead(port: u32, from: f64, until: f64) -> LinkFault {
        LinkFault {
            port,
            from,
            until,
            speed_factor: 0.0,
        }
    }

    /// A port running at `factor` of its speed from `from` onwards.
    pub fn degraded(port: u32, from: f64, factor: f64) -> LinkFault {
        assert!(factor > 0.0 && factor <= 1.0);
        LinkFault {
            port,
            from,
            until: f64::INFINITY,
            speed_factor: factor,
        }
    }

    fn active_at(&self, t: f64) -> bool {
        t >= self.from && t < self.until
    }
}

/// Aggregate fabric statistics, for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FabricStats {
    pub messages: u64,
    pub bytes: u64,
    /// Total time spent queued behind shared resources, summed over
    /// messages (seconds of virtual time).
    pub queued_s: f64,
    /// Messages eaten by a dead port ([`LinkFault`] with factor 0).
    pub link_dropped: u64,
    /// Messages that crossed a degraded port (slower, but delivered).
    pub link_degraded: u64,
}

/// Traffic accounting for one shared resource (uplink or trunk).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceStats {
    pub messages: u64,
    pub bytes: u64,
    /// Virtual seconds the resource was held serializing traffic. Held
    /// time near the experiment's span means the segment is saturated.
    pub held_s: f64,
    /// Virtual seconds message heads spent queued waiting on this
    /// resource specifically.
    pub queued_s: f64,
}

struct State {
    busy_until: HashMap<Resource, f64>,
    resource: HashMap<Resource, ResourceStats>,
    stats: FabricStats,
    /// Installed port faults. Empty in healthy fabrics — the per-transfer
    /// cost of the feature is one `is_empty` branch under the existing
    /// lock (pay-for-what-you-inject).
    faults: Vec<LinkFault>,
}

/// A shared, thread-safe cluster network.
pub struct Fabric {
    topology: SwitchFabric,
    profile: LibraryProfile,
    state: Mutex<State>,
}

impl Fabric {
    pub fn new(topology: SwitchFabric, profile: LibraryProfile) -> Self {
        Fabric {
            topology,
            profile,
            state: Mutex::new(State {
                busy_until: HashMap::new(),
                resource: HashMap::new(),
                stats: FabricStats::default(),
                faults: Vec::new(),
            }),
        }
    }

    /// An ideal non-blocking crossbar with the given profile.
    pub fn ideal(ports: u32, profile: LibraryProfile) -> Self {
        Fabric::new(SwitchFabric::crossbar(ports), profile)
    }

    /// The Space Simulator's fabric with the given MPI library.
    pub fn space_simulator(profile: LibraryProfile) -> Self {
        Fabric::new(SwitchFabric::space_simulator(), profile)
    }

    pub fn profile(&self) -> &LibraryProfile {
        &self.profile
    }

    pub fn topology(&self) -> &SwitchFabric {
        &self.topology
    }

    /// Trace-attribution class of the src→dst path (see
    /// [`SwitchFabric::link_class`]).
    pub fn link_class(&self, src: u32, dst: u32) -> obs::LinkClass {
        self.topology.link_class(src, dst)
    }

    /// Install a port fault. Takes effect for transfers departing inside
    /// the fault's window.
    pub fn inject_link_fault(&self, fault: LinkFault) {
        self.state.lock().faults.push(fault);
    }

    /// Remove every installed fault (e.g. between chaos experiments).
    pub fn clear_link_faults(&self) {
        self.state.lock().faults.clear();
    }

    /// Currently installed faults (for reports).
    pub fn link_faults(&self) -> Vec<LinkFault> {
        self.state.lock().faults.clone()
    }

    /// Schedule an `bytes`-byte message from `src` to `dst` departing at
    /// virtual time `depart`. Thread-safe; updates contention state.
    ///
    /// If either endpoint port has an active [`LinkFault`] the outcome may
    /// be non-delivered (`arrival = ∞`, dead port) or slowed (degraded
    /// port); check [`TransferOutcome::delivered`] when faults are in play.
    pub fn transfer(&self, src: u32, dst: u32, bytes: usize, depart: f64) -> TransferOutcome {
        if src == dst {
            // Self-send: local memcpy, modeled as a cheap copy at memory
            // bandwidth (1.2 GB/s for the XPC node).
            return TransferOutcome {
                arrival: depart + 1.0e-6 + bytes as f64 / 1.2e9,
                queued: 0.0,
            };
        }
        let route = self.topology.route(src, dst);
        let mut wire = self.profile.transfer_time(bytes);
        let mut st = self.state.lock();
        if !st.faults.is_empty() {
            // Slowest active fault on either endpoint port governs.
            let mut factor = 1.0f64;
            for f in &st.faults {
                if (f.port == src || f.port == dst) && f.active_at(depart) {
                    factor = factor.min(f.speed_factor);
                }
            }
            if factor <= 0.0 {
                st.stats.messages += 1;
                st.stats.bytes += bytes as u64;
                st.stats.link_dropped += 1;
                return TransferOutcome {
                    arrival: f64::INFINITY,
                    queued: 0.0,
                };
            }
            if factor < 1.0 {
                wire /= factor;
                st.stats.link_degraded += 1;
            }
        }
        // Cut-through model: the message's head waits for each busy segment
        // but does not pay the segment's serialization time itself (the
        // 779 Mbit/s NIC, charged once via `wire`, is always the narrowest
        // hop). Each segment is held for bytes/capacity, which is what makes
        // aggregate throughput saturate at the segment capacity.
        let mut t = depart;
        for r in route {
            let cap = self.topology.capacity(r);
            if !cap.is_finite() {
                continue;
            }
            let busy = st.busy_until.entry(r).or_insert(0.0);
            let start = t.max(*busy);
            let hold = bytes as f64 / cap;
            *busy = start + hold;
            let rs = st.resource.entry(r).or_default();
            rs.messages += 1;
            rs.bytes += bytes as u64;
            rs.held_s += hold;
            rs.queued_s += start - t;
            t = start;
        }
        let queued = t - depart;
        st.stats.messages += 1;
        st.stats.bytes += bytes as u64;
        st.stats.queued_s += queued;
        TransferOutcome {
            arrival: depart + queued + wire,
            queued,
        }
    }

    /// Uncontended one-way time for an `n`-byte message (no state update).
    pub fn point_to_point_time(&self, n: usize) -> f64 {
        self.profile.transfer_time(n)
    }

    pub fn stats(&self) -> FabricStats {
        self.state.lock().stats
    }

    /// Per-resource traffic accounting since the last [`Fabric::reset`],
    /// in stable (uplinks by index, then trunk) order.
    pub fn resource_stats(&self) -> Vec<(Resource, ResourceStats)> {
        let mut v: Vec<_> = self
            .state
            .lock()
            .resource
            .iter()
            .map(|(&r, &s)| (r, s))
            .collect();
        v.sort_by_key(|&(r, _)| r);
        v
    }

    /// Fold fabric traffic and contention into a metrics registry under
    /// the `net.` prefix — one counter/gauge set for the fabric plus one
    /// per shared resource that saw traffic. Intended for single-driver
    /// experiments (the fabric is shared, so folding it from every rank
    /// of a world would double-count).
    pub fn fold_metrics(&self, reg: &mut obs::Registry) {
        let s = self.stats();
        reg.add("net.messages", s.messages);
        reg.add("net.bytes", s.bytes);
        reg.add("net.link_dropped", s.link_dropped);
        reg.add("net.link_degraded", s.link_degraded);
        reg.set_gauge("net.queued_s", s.queued_s);
        for (r, rs) in self.resource_stats() {
            let name = match r {
                Resource::ModuleUplink(m) => format!("net.uplink{m}"),
                Resource::Trunk => "net.trunk".to_string(),
            };
            reg.add(&format!("{name}.messages"), rs.messages);
            reg.add(&format!("{name}.bytes"), rs.bytes);
            reg.set_gauge(&format!("{name}.held_s"), rs.held_s);
            reg.set_gauge(&format!("{name}.queued_s"), rs.queued_s);
        }
    }

    /// Reset contention state and statistics (e.g. between experiments).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.busy_until.clear();
        st.resource.clear();
        st.stats = FabricStats::default();
    }

    /// Reproduce the paper's switch-characterization experiment: `pairs`
    /// simultaneous flows each pushing `bytes_per_flow` from module A to
    /// module B (or across the trunk when `cross_switch`). Returns the
    /// aggregate throughput in Mbit/s.
    pub fn aggregate_pairs_mbits(
        &self,
        pairs: u32,
        bytes_per_flow: usize,
        cross_switch: bool,
    ) -> f64 {
        self.reset();
        let msg = 64 * 1024;
        let n_msgs = bytes_per_flow / msg;
        let dst_base = if cross_switch {
            // First port of the second chassis.
            self.topology.switches[0].ports()
        } else {
            // First port of the second module on chassis 0.
            self.topology.switches[0].ports_per_module
        };
        let mut finish: f64 = 0.0;
        // Round-robin across flows so contention interleaves realistically.
        let mut clocks = vec![0.0f64; pairs as usize];
        for _ in 0..n_msgs {
            for p in 0..pairs {
                let out = self.transfer(p, dst_base + p, msg, clocks[p as usize]);
                clocks[p as usize] = out.arrival;
                finish = finish.max(out.arrival);
            }
        }
        let total_bytes = pairs as usize * n_msgs * msg;
        crate::mbits_per_sec(total_bytes, finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss() -> Fabric {
        Fabric::space_simulator(LibraryProfile::tcp())
    }

    #[test]
    fn single_flow_hits_nic_limit() {
        let f = ss();
        // One flow within a module: NIC-limited near 779 Mbit/s.
        let n = 1 << 20;
        let out = f.transfer(0, 1, n, 0.0);
        let mbits = crate::mbits_per_sec(n, out.arrival);
        assert!(mbits > 700.0 && mbits < 779.0, "got {mbits}");
        assert_eq!(out.queued, 0.0);
    }

    #[test]
    fn sixteen_cross_module_pairs_aggregate_near_6_gbit() {
        let f = ss();
        let agg = f.aggregate_pairs_mbits(16, 8 << 20, false);
        // Paper: "the total throughput was about 6000 Mbits".
        assert!(agg > 5200.0 && agg < 6600.0, "got {agg}");
    }

    #[test]
    fn intra_module_pairs_scale_linearly() {
        let f = ss();
        f.reset();
        // 8 pairs inside one 16-port module: non-blocking, so each flow
        // runs at NIC speed and the aggregate is ~8x one flow.
        let n = 1 << 20;
        let mut finish: f64 = 0.0;
        for p in 0..8u32 {
            let out = f.transfer(p, 8 + p, n, 0.0);
            assert_eq!(out.queued, 0.0);
            finish = finish.max(out.arrival);
        }
        let agg = crate::mbits_per_sec(8 * n, finish);
        assert!(agg > 5600.0, "got {agg}");
    }

    #[test]
    fn trunk_limits_cross_switch_traffic() {
        let f = ss();
        // 32 flows from the FastIron 1500 to the FastIron 800 all funnel
        // through the 8 Gbit trunk; uncontended they would aggregate to
        // 32 x 779 ≈ 24 900 Mbit/s.
        let cross_switch = f.aggregate_pairs_mbits(32, 4 << 20, true);
        assert!(
            cross_switch > 7000.0 && cross_switch < 8200.0,
            "got {cross_switch}"
        );
    }

    #[test]
    fn self_send_is_memory_speed() {
        let f = ss();
        let out = f.transfer(5, 5, 1 << 20, 0.0);
        // ~0.9 ms for 1 MB at 1.2 GB/s.
        assert!(out.arrival < 2.0e-3, "got {}", out.arrival);
    }

    #[test]
    fn queueing_is_reported() {
        let f = ss();
        // Two flows sharing the same module uplink at the same instant:
        // the second should see queueing.
        let n = 1 << 20;
        let a = f.transfer(0, 16, n, 0.0);
        let b = f.transfer(1, 17, n, 0.0);
        assert_eq!(a.queued, 0.0);
        assert!(b.queued > 0.0);
        assert!(b.arrival > a.arrival - 1e-12);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let f = ss();
        f.transfer(0, 1, 100, 0.0);
        f.transfer(0, 1, 100, 0.0);
        let s = f.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 200);
        f.reset();
        assert_eq!(f.stats().messages, 0);
    }

    #[test]
    fn dead_port_eats_messages_during_its_window() {
        let f = ss();
        f.inject_link_fault(LinkFault::dead(3, 1.0, 2.0));
        // Before the window: delivered.
        assert!(f.transfer(3, 4, 1024, 0.5).delivered());
        // Inside the window, either direction: dropped.
        assert!(!f.transfer(3, 4, 1024, 1.5).delivered());
        assert!(!f.transfer(4, 3, 1024, 1.5).delivered());
        // Other ports unaffected.
        assert!(f.transfer(5, 6, 1024, 1.5).delivered());
        // After the cure: delivered again.
        assert!(f.transfer(3, 4, 1024, 2.5).delivered());
        assert_eq!(f.stats().link_dropped, 2);
    }

    #[test]
    fn degraded_port_slows_but_delivers() {
        let f = ss();
        let n = 1 << 20;
        let healthy = f.transfer(0, 1, n, 0.0).arrival;
        f.inject_link_fault(LinkFault::degraded(0, 0.0, 0.25));
        let degraded = f.transfer(0, 1, n, 0.0).arrival;
        assert!(degraded.is_finite());
        // 4x slower serialization dominates the 1 MB transfer.
        assert!(
            degraded > healthy * 3.0,
            "healthy {healthy} vs degraded {degraded}"
        );
        f.clear_link_faults();
        let cured = f.transfer(0, 1, n, 0.0).arrival;
        assert!((cured - healthy).abs() < healthy * 1e-9);
    }

    #[test]
    fn healthy_fabric_pays_nothing_for_the_fault_hook() {
        let f = ss();
        assert!(f.link_faults().is_empty());
        let out = f.transfer(0, 1, 4096, 0.0);
        assert!(out.delivered());
        assert_eq!(f.stats().link_dropped, 0);
        assert_eq!(f.stats().link_degraded, 0);
    }

    #[test]
    fn ideal_fabric_never_queues() {
        let f = Fabric::ideal(512, LibraryProfile::quadrics());
        for i in 0..100u32 {
            let out = f.transfer(i, 511 - i, 1 << 16, 0.0);
            assert_eq!(out.queued, 0.0);
        }
    }
}

impl Fabric {
    /// The §3.1 experiment verbatim: "a small MPI program which
    /// simultaneously sends messages between pairs of processors along
    /// various hypercube edges." Pairs partners differing in bit `dim`
    /// of the rank; returns aggregate Mbit/s over `ranks` ports.
    pub fn hypercube_edge_mbits(&self, ranks: u32, dim: u32, bytes_per_flow: usize) -> f64 {
        assert!(1 << dim < ranks);
        self.reset();
        let msg = 64 * 1024;
        let n_msgs = bytes_per_flow / msg;
        let mut clocks = vec![0.0f64; ranks as usize];
        let mut finish: f64 = 0.0;
        let mut total_bytes = 0usize;
        for _ in 0..n_msgs {
            for src in 0..ranks {
                let dst = src ^ (1 << dim);
                if dst >= ranks {
                    continue;
                }
                let out = self.transfer(src, dst, msg, clocks[src as usize]);
                clocks[src as usize] = out.arrival;
                finish = finish.max(out.arrival);
                total_bytes += msg;
            }
        }
        crate::mbits_per_sec(total_bytes, finish)
    }
}

#[cfg(test)]
mod hypercube_tests {
    use super::*;

    #[test]
    fn low_dims_are_nonblocking_high_dims_hit_the_backplane() {
        let f = Fabric::space_simulator(LibraryProfile::tcp());
        // dim 0..3: partners stay within a 16-port module -> aggregate
        // scales with the number of flows.
        let low = f.hypercube_edge_mbits(32, 1, 4 << 20);
        // dim 4: partners are 16 apart -> every flow crosses modules.
        let high = f.hypercube_edge_mbits(32, 4, 4 << 20);
        assert!(
            low > high,
            "intra-module {low} should beat cross-module {high}"
        );
        // 32 flows all crossing one pair of uplinks: capped well below
        // the non-blocking aggregate.
        assert!(high < 13_000.0, "got {high}");
    }

    #[test]
    fn trunk_dimension_is_the_slowest() {
        let f = Fabric::space_simulator(LibraryProfile::tcp());
        // 288 ranks, dim 8 (partners 256 apart): flows from ports
        // 0..31 pair with 256..287 across the trunk.
        let trunk_dim = f.hypercube_edge_mbits(288, 8, 2 << 20);
        let module_dim = f.hypercube_edge_mbits(288, 4, 2 << 20);
        assert!(
            trunk_dim < module_dim,
            "trunk {trunk_dim} vs module {module_dim}"
        );
    }
}
