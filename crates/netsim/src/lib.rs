//! Network fabric model for Gigabit-Ethernet Beowulf clusters.
//!
//! This crate models the communication hardware of the Space Simulator
//! (SC'03): 3Com 3c996B-T NICs on a 32-bit/33 MHz PCI bus, and a trunked
//! pair of Foundry FastIron 1500 + 800 switches, as characterized in §3.1
//! of the paper:
//!
//! * point-to-point TCP throughput saturates at 779 Mbit/s with a 79 µs
//!   small-message latency;
//! * MPI libraries add their own overhead (LAM 83 µs, MPICH 87 µs) and, for
//!   mpich-1.2.5, a large-message bandwidth penalty (fixed in mpich2-0.92);
//! * traffic is non-blocking within a 16-port switch module, limited to
//!   about 8 Gbit/s (≈6 Gbit/s measured) between modules, and limited to an
//!   8 Gbit/s fiber trunk between the two switches — which is what caps the
//!   scaling of codes on more than about 256 processors.
//!
//! The model is intentionally simple — latency + serialization + shared-
//! resource contention — because those are exactly the effects the paper
//! measures. Time is in seconds, sizes in bytes, bandwidth in bytes/second.

pub mod fabric;
pub mod netpipe;
pub mod profiles;
pub mod switch;

pub use fabric::{Fabric, LinkFault, ResourceStats, TransferOutcome};
pub use netpipe::{netpipe_sweep, NetpipePoint};
pub use profiles::LibraryProfile;
pub use switch::{SwitchFabric, SwitchSpec};

/// One megabit per second, in bytes per second.
pub const MBIT: f64 = 1.0e6 / 8.0;
/// One gigabit per second, in bytes per second.
pub const GBIT: f64 = 1.0e9 / 8.0;

/// Convert a (bytes, seconds) pair to megabits per second, the unit NetPIPE
/// and Figure 2 of the paper report.
pub fn mbits_per_sec(bytes: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    bytes as f64 * 8.0 / 1.0e6 / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert!((MBIT - 125_000.0).abs() < 1e-9);
        assert!((GBIT - 125_000_000.0).abs() < 1e-6);
        // 1 MB in 1 s = 8 Mbit/s.
        assert!((mbits_per_sec(1_000_000, 1.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn mbits_handles_zero_time() {
        assert!(mbits_per_sec(100, 0.0).is_infinite());
    }
}
