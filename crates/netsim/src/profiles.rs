//! Message-passing library performance profiles.
//!
//! Figure 2 of the paper shows NetPIPE bandwidth-vs-message-size curves for
//! plain TCP and for several MPI implementations. The curves differ in three
//! ways, each captured by a field of [`LibraryProfile`]:
//!
//! 1. small-message (one-way) latency: 79 µs TCP, 83 µs LAM, 87 µs MPICH;
//! 2. asymptotic bandwidth: 779 Mbit/s for TCP (the PCI-bus limit of the
//!    3c996B-T in a 32-bit/33 MHz slot), slightly lower for the MPI layers,
//!    and markedly lower for mpich-1.2.5 at large message sizes;
//! 3. the half-bandwidth message size, which for the Hockney model
//!    `T(n) = latency + n / bw(n)` emerges as `latency × bw` — about 7.7 kB
//!    for TCP on this NIC, matching the knee of the measured curves.
//!
//! `bw(n)` switches to the degraded `large_bw` above `large_threshold`
//! (mpich-1.2.5's large-message pathology, fixed in mpich2-0.92).

use serde::{Deserialize, Serialize};

/// Performance profile of one message-passing layer over the gigabit NIC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibraryProfile {
    /// Display name, e.g. `"LAM 6.5.9 -O"`.
    pub name: &'static str,
    /// One-way small-message latency in seconds.
    pub latency_s: f64,
    /// Asymptotic bandwidth for "small-to-medium" messages, bytes/second.
    pub bandwidth: f64,
    /// Message size above which `large_bw` applies (usize::MAX = never).
    pub large_threshold: usize,
    /// Degraded bandwidth for messages above `large_threshold`, bytes/second.
    pub large_bw: f64,
    /// Per-message CPU overhead charged to the sender, seconds.
    pub send_overhead_s: f64,
    /// Per-message CPU overhead charged to the receiver, seconds.
    pub recv_overhead_s: f64,
}

impl LibraryProfile {
    /// Effective bandwidth for an `n`-byte message, bytes/second.
    pub fn effective_bandwidth(&self, n: usize) -> f64 {
        if n > self.large_threshold {
            self.large_bw
        } else {
            self.bandwidth
        }
    }

    /// One-way transfer time of an `n`-byte message over an uncontended
    /// path, in seconds.
    pub fn transfer_time(&self, n: usize) -> f64 {
        let bw = self.effective_bandwidth(n);
        self.latency_s + n as f64 / bw
    }

    /// NetPIPE-style reported throughput in Mbit/s for message size `n`.
    pub fn throughput_mbits(&self, n: usize) -> f64 {
        crate::mbits_per_sec(n, self.transfer_time(n))
    }

    /// Pure time spent on the wire (serialization), excluding latency; used
    /// by the fabric to hold shared resources busy.
    pub fn serialization_time(&self, n: usize) -> f64 {
        n as f64 / self.effective_bandwidth(n)
    }

    /// Plain TCP over the 3c996B-T: 79 µs latency, 779 Mbit/s asymptote.
    pub fn tcp() -> Self {
        LibraryProfile {
            name: "TCP",
            latency_s: 79.0e-6,
            bandwidth: 779.0 * crate::MBIT,
            large_threshold: usize::MAX,
            large_bw: 779.0 * crate::MBIT,
            send_overhead_s: 4.0e-6,
            recv_overhead_s: 4.0e-6,
        }
    }

    /// LAM 6.5.9 with `-O` (homogeneous environment — no byte-swapping
    /// checks): nearly TCP-class bandwidth, 83 µs latency.
    pub fn lam_homogeneous() -> Self {
        LibraryProfile {
            name: "LAM 6.5.9 -O",
            latency_s: 83.0e-6,
            bandwidth: 755.0 * crate::MBIT,
            large_threshold: usize::MAX,
            large_bw: 755.0 * crate::MBIT,
            send_overhead_s: 6.0e-6,
            recv_overhead_s: 6.0e-6,
        }
    }

    /// LAM 6.5.9 without `-O`: heterogeneity checks cost bandwidth.
    pub fn lam() -> Self {
        LibraryProfile {
            name: "LAM 6.5.9",
            latency_s: 83.0e-6,
            bandwidth: 620.0 * crate::MBIT,
            large_threshold: usize::MAX,
            large_bw: 620.0 * crate::MBIT,
            send_overhead_s: 7.0e-6,
            recv_overhead_s: 7.0e-6,
        }
    }

    /// mpich-1.2.5: 87 µs latency and a large-message bandwidth collapse
    /// (the paper: "mpich-1.2.5 has lower performance for large messages
    /// than the rest of the libraries").
    pub fn mpich1() -> Self {
        LibraryProfile {
            name: "mpich-1.2.5",
            latency_s: 87.0e-6,
            bandwidth: 700.0 * crate::MBIT,
            large_threshold: 128 * 1024,
            large_bw: 450.0 * crate::MBIT,
            send_overhead_s: 8.0e-6,
            recv_overhead_s: 8.0e-6,
        }
    }

    /// mpich2-0.92 beta: same latency as mpich1 but the large-message
    /// problem is fixed.
    pub fn mpich2() -> Self {
        LibraryProfile {
            name: "mpich2-0.92",
            latency_s: 87.0e-6,
            bandwidth: 720.0 * crate::MBIT,
            large_threshold: usize::MAX,
            large_bw: 720.0 * crate::MBIT,
            send_overhead_s: 8.0e-6,
            recv_overhead_s: 8.0e-6,
        }
    }

    /// All Figure 2 profiles, in the order the legend lists them.
    pub fn figure2_set() -> Vec<Self> {
        vec![
            Self::tcp(),
            Self::lam_homogeneous(),
            Self::lam(),
            Self::mpich2(),
            Self::mpich1(),
        ]
    }

    /// Quadrics Elan-3 class interconnect (ASCI Q), for cross-machine
    /// comparisons: ~5 µs latency, ~300 MB/s per rail.
    pub fn quadrics() -> Self {
        LibraryProfile {
            name: "Quadrics Elan3",
            latency_s: 5.0e-6,
            bandwidth: 300.0e6,
            large_threshold: usize::MAX,
            large_bw: 300.0e6,
            send_overhead_s: 1.0e-6,
            recv_overhead_s: 1.0e-6,
        }
    }

    /// 100 Mbit Fast Ethernet (Loki/Avalon era).
    pub fn fast_ethernet() -> Self {
        LibraryProfile {
            name: "Fast Ethernet",
            latency_s: 120.0e-6,
            bandwidth: 90.0 * crate::MBIT,
            large_threshold: usize::MAX,
            large_bw: 90.0 * crate::MBIT,
            send_overhead_s: 15.0e-6,
            recv_overhead_s: 15.0e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_asymptote_approaches_779_mbits() {
        let p = LibraryProfile::tcp();
        let t = p.throughput_mbits(16 * 1024 * 1024);
        assert!(t > 770.0 && t < 779.0, "got {t}");
    }

    #[test]
    fn latency_dominates_small_messages() {
        let p = LibraryProfile::tcp();
        // A 1-byte message takes essentially the latency.
        let t = p.transfer_time(1);
        assert!(t > 79.0e-6 && t < 82.0e-6, "got {t}");
    }

    #[test]
    fn mpich1_collapses_for_large_messages() {
        let m1 = LibraryProfile::mpich1();
        let m2 = LibraryProfile::mpich2();
        let big = 4 * 1024 * 1024;
        let small = 64 * 1024;
        // At 64 kB the two are close; at 4 MB mpich1 is clearly slower.
        let ratio_small = m1.throughput_mbits(small) / m2.throughput_mbits(small);
        let ratio_big = m1.throughput_mbits(big) / m2.throughput_mbits(big);
        assert!(ratio_small > 0.9, "got {ratio_small}");
        assert!(ratio_big < 0.7, "got {ratio_big}");
    }

    #[test]
    fn latency_ordering_matches_paper() {
        let tcp = LibraryProfile::tcp();
        let lam = LibraryProfile::lam_homogeneous();
        let mpich = LibraryProfile::mpich1();
        assert!(tcp.latency_s < lam.latency_s);
        assert!(lam.latency_s < mpich.latency_s);
    }

    #[test]
    fn transfer_time_is_monotone_in_size() {
        for p in LibraryProfile::figure2_set() {
            let mut last = 0.0;
            let mut n = 1usize;
            while n <= 1 << 24 {
                let t = p.transfer_time(n);
                assert!(t > last, "{}: time not monotone at n={n}", p.name);
                last = t;
                n *= 2;
            }
        }
    }

    #[test]
    fn lam_homogeneous_beats_plain_lam() {
        let fast = LibraryProfile::lam_homogeneous();
        let slow = LibraryProfile::lam();
        assert!(fast.throughput_mbits(1 << 20) > slow.throughput_mbits(1 << 20));
    }
}
