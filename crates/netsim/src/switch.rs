//! Topology of the Foundry FastIron switch fabric.
//!
//! The Space Simulator's network is a trunked pair: a FastIron 1500 and a
//! FastIron 800, 304 gigabit ports total. §3.1 of the paper establishes
//! three regimes, which this module encodes as a routing function from a
//! (src, dst) port pair to the set of shared resources the message crosses:
//!
//! * ports on the same 16-port module: non-blocking (no shared resource);
//! * ports on different modules of one switch: the source and destination
//!   module uplinks, each with ≈8 Gbit/s nominal (≈6 Gbit/s measured for
//!   16 simultaneous streams — we use the measured figure);
//! * ports on different switches: additionally the 8 Gbit/s fiber trunk.

use serde::{Deserialize, Serialize};

/// Identifier of a shared fabric resource that messages serialize on.
/// `Ord` gives reports and metric exports a stable resource order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Uplink from a module to the switch backplane. Indexed globally.
    ModuleUplink(u32),
    /// The inter-switch fiber trunk.
    Trunk,
}

/// Static description of one switch chassis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Ports per line-card module (16 for the FastIron).
    pub ports_per_module: u32,
    /// Number of modules in this chassis.
    pub modules: u32,
    /// Effective module-to-backplane capacity, bytes/second.
    pub module_capacity: f64,
}

impl SwitchSpec {
    /// Total ports in the chassis.
    pub fn ports(&self) -> u32 {
        self.ports_per_module * self.modules
    }
}

/// The full fabric: an ordered list of chassis joined by a trunk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchFabric {
    pub switches: Vec<SwitchSpec>,
    /// Capacity of the trunk joining consecutive chassis, bytes/second.
    pub trunk_capacity: f64,
}

impl SwitchFabric {
    /// The Space Simulator fabric: FastIron 1500 (14 modules populated) +
    /// FastIron 800 (5 modules), 8 Gbit trunk; measured inter-module
    /// throughput ≈6 Gbit/s.
    pub fn space_simulator() -> Self {
        let measured_module = 6.0 * crate::GBIT;
        SwitchFabric {
            switches: vec![
                SwitchSpec {
                    ports_per_module: 16,
                    modules: 14,
                    module_capacity: measured_module,
                },
                SwitchSpec {
                    ports_per_module: 16,
                    modules: 5,
                    module_capacity: measured_module,
                },
            ],
            trunk_capacity: 8.0 * crate::GBIT,
        }
    }

    /// A single ideal crossbar with `ports` ports (for small clusters and
    /// for machines whose interconnect we treat as non-blocking).
    pub fn crossbar(ports: u32) -> Self {
        SwitchFabric {
            switches: vec![SwitchSpec {
                ports_per_module: ports.max(1),
                modules: 1,
                module_capacity: f64::INFINITY,
            }],
            trunk_capacity: f64::INFINITY,
        }
    }

    /// Total port count across all chassis.
    pub fn total_ports(&self) -> u32 {
        self.switches.iter().map(|s| s.ports()).sum()
    }

    /// Which chassis a global port index lives on, plus the local port.
    fn locate(&self, port: u32) -> (usize, u32) {
        let mut p = port;
        for (i, s) in self.switches.iter().enumerate() {
            if p < s.ports() {
                return (i, p);
            }
            p -= s.ports();
        }
        panic!(
            "port {port} out of range (fabric has {} ports)",
            self.total_ports()
        );
    }

    /// Global module index of a port (modules numbered across chassis).
    pub fn module_of(&self, port: u32) -> u32 {
        let (chassis, local) = self.locate(port);
        let before: u32 = self.switches[..chassis].iter().map(|s| s.modules).sum();
        before + local / self.switches[chassis].ports_per_module
    }

    /// Capacity of a resource, bytes/second.
    pub fn capacity(&self, r: Resource) -> f64 {
        match r {
            Resource::ModuleUplink(m) => {
                let mut idx = m;
                for s in &self.switches {
                    if idx < s.modules {
                        return s.module_capacity;
                    }
                    idx -= s.modules;
                }
                panic!("module {m} out of range");
            }
            Resource::Trunk => self.trunk_capacity,
        }
    }

    /// The shared resources an src→dst message crosses. Empty when the two
    /// ports share a module (the non-blocking case).
    pub fn route(&self, src: u32, dst: u32) -> Vec<Resource> {
        assert_ne!(src, dst, "route requires distinct ports");
        let (cs, _) = self.locate(src);
        let (cd, _) = self.locate(dst);
        let ms = self.module_of(src);
        let md = self.module_of(dst);
        if ms == md {
            return Vec::new();
        }
        let mut path = vec![Resource::ModuleUplink(ms)];
        if cs != cd {
            path.push(Resource::Trunk);
        }
        path.push(Resource::ModuleUplink(md));
        path
    }

    /// Total number of modules across all chassis.
    pub fn total_modules(&self) -> u32 {
        self.switches.iter().map(|s| s.modules).sum()
    }

    /// Coarse classification of the src→dst path for trace attribution:
    /// self-sends are `Local`, same-module ports `Intra`, cross-module
    /// same-chassis `Uplink`, and cross-chassis `Trunk` (the scarcest
    /// resource — the paper's >256p bottleneck).
    pub fn link_class(&self, src: u32, dst: u32) -> obs::LinkClass {
        if src == dst {
            return obs::LinkClass::Local;
        }
        if self.module_of(src) == self.module_of(dst) {
            return obs::LinkClass::Intra;
        }
        let (cs, _) = self.locate(src);
        let (cd, _) = self.locate(dst);
        if cs != cd {
            obs::LinkClass::Trunk
        } else {
            obs::LinkClass::Uplink
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_simulator_has_304_ports() {
        let f = SwitchFabric::space_simulator();
        assert_eq!(f.total_ports(), 304);
        assert_eq!(f.total_modules(), 19);
    }

    #[test]
    fn same_module_is_nonblocking() {
        let f = SwitchFabric::space_simulator();
        assert!(f.route(0, 15).is_empty());
        assert!(f.route(17, 30).is_empty());
    }

    #[test]
    fn cross_module_uses_two_uplinks() {
        let f = SwitchFabric::space_simulator();
        let path = f.route(0, 16);
        assert_eq!(
            path,
            vec![Resource::ModuleUplink(0), Resource::ModuleUplink(1)]
        );
    }

    #[test]
    fn cross_switch_uses_trunk() {
        let f = SwitchFabric::space_simulator();
        // Port 0 is on the FastIron 1500 (ports 0..224); port 230 is on the
        // FastIron 800.
        let path = f.route(0, 230);
        assert!(path.contains(&Resource::Trunk));
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn module_numbering_is_global() {
        let f = SwitchFabric::space_simulator();
        assert_eq!(f.module_of(0), 0);
        assert_eq!(f.module_of(223), 13);
        assert_eq!(f.module_of(224), 14); // first port of the FastIron 800
        assert_eq!(f.module_of(303), 18);
    }

    #[test]
    fn crossbar_routes_are_free() {
        let f = SwitchFabric::crossbar(64);
        assert!(f.route(0, 63).is_empty());
        assert_eq!(f.total_ports(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_port_panics() {
        let f = SwitchFabric::space_simulator();
        f.module_of(304);
    }

    #[test]
    fn trunk_capacity_is_8_gbit() {
        let f = SwitchFabric::space_simulator();
        assert!((f.capacity(Resource::Trunk) - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn link_classes_match_routes() {
        let f = SwitchFabric::space_simulator();
        assert_eq!(f.link_class(3, 3), obs::LinkClass::Local);
        assert_eq!(f.link_class(0, 15), obs::LinkClass::Intra);
        assert_eq!(f.link_class(0, 16), obs::LinkClass::Uplink);
        assert_eq!(f.link_class(0, 230), obs::LinkClass::Trunk);
        let xbar = SwitchFabric::crossbar(64);
        assert_eq!(xbar.link_class(0, 63), obs::LinkClass::Intra);
    }
}
