//! NetPIPE-style bandwidth sweep (Figure 2 of the paper).
//!
//! NetPIPE measures ping-pong round-trip times across a geometric ladder of
//! message sizes and reports the achieved throughput for each. We run the
//! same protocol against a [`LibraryProfile`]: each point is the one-way
//! time for the message, and throughput is `8n / T(n)`.

use crate::profiles::LibraryProfile;

/// One point of a NetPIPE sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetpipePoint {
    /// Message size in bytes.
    pub bytes: usize,
    /// One-way transfer time in seconds.
    pub time_s: f64,
    /// Reported throughput in Mbit/s.
    pub mbits: f64,
}

/// Sweep message sizes from `min_bytes` to `max_bytes` (inclusive,
/// doubling), returning the bandwidth curve for `profile`.
pub fn netpipe_sweep(
    profile: &LibraryProfile,
    min_bytes: usize,
    max_bytes: usize,
) -> Vec<NetpipePoint> {
    assert!(min_bytes >= 1 && min_bytes <= max_bytes);
    let mut points = Vec::new();
    let mut n = min_bytes;
    loop {
        let t = profile.transfer_time(n);
        points.push(NetpipePoint {
            bytes: n,
            time_s: t,
            mbits: crate::mbits_per_sec(n, t),
        });
        if n >= max_bytes {
            break;
        }
        n = (n * 2).min(max_bytes);
    }
    points
}

/// The standard Figure 2 sweep: 1 byte to 16 MB for every library in the
/// figure's legend. Returns `(library name, curve)` pairs.
pub fn figure2_curves() -> Vec<(&'static str, Vec<NetpipePoint>)> {
    LibraryProfile::figure2_set()
        .into_iter()
        .map(|p| (p.name, netpipe_sweep(&p, 1, 16 << 20)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_requested_range() {
        let pts = netpipe_sweep(&LibraryProfile::tcp(), 1, 1 << 20);
        assert_eq!(pts.first().unwrap().bytes, 1);
        assert_eq!(pts.last().unwrap().bytes, 1 << 20);
        assert_eq!(pts.len(), 21); // 1, 2, 4, ..., 2^20
    }

    #[test]
    fn throughput_is_monotone_for_wellbehaved_libraries() {
        // TCP, LAM and mpich2 have no large-message cliff, so throughput
        // rises monotonically with size.
        for p in [
            LibraryProfile::tcp(),
            LibraryProfile::lam_homogeneous(),
            LibraryProfile::mpich2(),
        ] {
            let pts = netpipe_sweep(&p, 1, 16 << 20);
            for w in pts.windows(2) {
                assert!(
                    w[1].mbits >= w[0].mbits,
                    "{}: dip at {} bytes",
                    p.name,
                    w[1].bytes
                );
            }
        }
    }

    #[test]
    fn mpich1_curve_has_the_large_message_cliff() {
        let pts = netpipe_sweep(&LibraryProfile::mpich1(), 1, 16 << 20);
        let peak = pts.iter().map(|p| p.mbits).fold(0.0, f64::max);
        let last = pts.last().unwrap().mbits;
        assert!(last < peak * 0.75, "no cliff: peak {peak}, last {last}");
    }

    #[test]
    fn figure2_has_five_curves_with_tcp_fastest() {
        let curves = figure2_curves();
        assert_eq!(curves.len(), 5);
        let final_mbits: Vec<(&str, f64)> = curves
            .iter()
            .map(|(name, c)| (*name, c.last().unwrap().mbits))
            .collect();
        let tcp = final_mbits.iter().find(|(n, _)| *n == "TCP").unwrap().1;
        for (name, m) in &final_mbits {
            if *name != "TCP" {
                assert!(*m <= tcp, "{name} beats TCP: {m} > {tcp}");
            }
        }
        assert!(tcp > 770.0 && tcp < 779.0);
    }

    #[test]
    #[should_panic]
    fn zero_min_bytes_rejected() {
        netpipe_sweep(&LibraryProfile::tcp(), 0, 100);
    }
}
