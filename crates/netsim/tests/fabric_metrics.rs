//! Regression tests locking the §3.1 fabric shape through the metrics
//! surface (`Fabric::fold_metrics` / `resource_stats`) rather than raw
//! arrival times: the paper's three regimes — NIC-limited point-to-point
//! at ≤779 Mbit/s, ~6 Gbit/s module backplane contention for >16-port
//! patterns, and the 8 Gbit/s inter-switch trunk — must each be visible
//! in the folded counters and gauges.

use netsim::switch::Resource;
use netsim::{mbits_per_sec, Fabric, LibraryProfile, GBIT};

fn ss() -> Fabric {
    Fabric::space_simulator(LibraryProfile::tcp())
}

/// Effective Mbit/s a resource sustained while it was held.
fn held_mbits(reg: &obs::Registry, name: &str) -> f64 {
    let bytes = reg.counter(&format!("{name}.bytes")) as usize;
    let held = reg.gauge(&format!("{name}.held_s")).expect(name);
    mbits_per_sec(bytes, held)
}

#[test]
fn point_to_point_stays_under_779_mbits() {
    let f = ss();
    let n = 1 << 20;
    let out = f.transfer(0, 1, n, 0.0);
    let mbits = mbits_per_sec(n, out.arrival);
    assert!(mbits > 700.0 && mbits <= 779.0, "p2p {mbits} Mbit/s");
    // Same-module traffic is non-blocking: the metrics must show zero
    // shared-resource involvement.
    let mut reg = obs::Registry::new();
    f.fold_metrics(&mut reg);
    assert_eq!(reg.counter("net.messages"), 1);
    assert_eq!(reg.counter("net.bytes"), n as u64);
    assert_eq!(reg.gauge("net.queued_s"), Some(0.0));
    assert!(
        f.resource_stats().is_empty(),
        "same-module flow touched a resource"
    );
}

#[test]
fn cross_module_pattern_shows_backplane_contention_in_metrics() {
    // The paper's experiment: 16 ports on one module all sending to 16
    // ports on another — "the total throughput was about 6000 Mbits".
    let f = ss();
    let total = 16usize * (8 << 20);
    let agg = f.aggregate_pairs_mbits(16, 8 << 20, false);
    assert!(agg > 5200.0 && agg < 6600.0, "aggregate {agg} Mbit/s");

    let mut reg = obs::Registry::new();
    f.fold_metrics(&mut reg);
    // Every byte crossed both uplinks, nothing touched the trunk.
    assert_eq!(reg.counter("net.uplink0.bytes"), total as u64);
    assert_eq!(reg.counter("net.uplink1.bytes"), total as u64);
    assert_eq!(reg.counter("net.trunk.bytes"), 0);
    // The uplink was held at exactly its measured ~6 Gbit/s capacity,
    // and heads queued behind it (that is what contention means).
    let uplink = held_mbits(&reg, "net.uplink0");
    assert!(
        (uplink - 6000.0).abs() < 1.0,
        "uplink held at {uplink} Mbit/s"
    );
    assert!(
        reg.gauge("net.queued_s").unwrap() > 0.0,
        "no queueing recorded"
    );
    // 16 concurrent NIC-speed flows into a 6 Gbit/s segment are ~2x
    // oversubscribed; the aggregate must sit at the segment limit, far
    // below 16 x 779.
    assert!(agg < 0.6 * 16.0 * 779.0);
}

#[test]
fn cross_switch_pattern_is_trunk_limited_in_metrics() {
    let f = ss();
    let total = 32usize * (4 << 20);
    let agg = f.aggregate_pairs_mbits(32, 4 << 20, true);
    assert!(agg > 7000.0 && agg < 8200.0, "aggregate {agg} Mbit/s");

    let mut reg = obs::Registry::new();
    f.fold_metrics(&mut reg);
    // All traffic funneled through the 8 Gbit/s fiber trunk.
    assert_eq!(reg.counter("net.trunk.bytes"), total as u64);
    let trunk = held_mbits(&reg, "net.trunk");
    assert!((trunk - 8000.0).abs() < 1.0, "trunk held at {trunk} Mbit/s");
    // The trunk is the narrowest shared segment on the path: it must be
    // where the queueing concentrated.
    let trunk_q = reg.gauge("net.trunk.queued_s").unwrap();
    assert!(trunk_q > 0.0);
    // resource_stats reports in stable order with the trunk last.
    let stats = f.resource_stats();
    assert_eq!(stats.last().unwrap().0, Resource::Trunk);
    assert_eq!(stats.last().unwrap().1.bytes, total as u64);
}

#[test]
fn trunk_capacity_matches_the_paper_figure() {
    let f = ss();
    assert!((f.topology().capacity(Resource::Trunk) - 8.0 * GBIT).abs() < 1.0);
    // Module capacity is the *measured* 6 Gbit/s, not the nominal 8.
    assert!((f.topology().capacity(Resource::ModuleUplink(0)) - 6.0 * GBIT).abs() < 1.0);
}
