//! Roundtrip properties of the columnar snapshot store: the frame is a
//! canonical, byte-deterministic function of the body *set*; cell
//! partitioning and merge are inverses; every f64 lane survives
//! bit-for-bit (NaN payloads, signed zeros, subnormals included);
//! footer pruning never drops a cell that could hold a match; and
//! full/delta generation chains materialize back to exactly the states
//! they committed.

use hot::models::plummer;
use hot::{BBox, Body};
use store::{record_kind, GenerationLog, RecordKind, Snapshot, SnapshotCache, StoreConfig};

/// SplitMix64 — deterministic perturbations without external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn sample(n: usize, seed: u64) -> (Vec<Body>, Vec<f64>, BBox) {
    let bodies = plummer(n, seed);
    let mut rng = Rng(seed ^ 0xA5A5);
    let aux: Vec<f64> = (0..n * 2).map(|_| rng.f64() * 10.0 - 5.0).collect();
    let bbox = BBox::enclosing(bodies.iter().map(|b| b.pos));
    (bodies, aux, bbox)
}

fn sorted_by_id(mut bodies: Vec<Body>) -> Vec<Body> {
    bodies.sort_by_key(|b| b.id);
    bodies
}

fn assert_bit_equal(a: &[Body], b: &[Body]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        for d in 0..3 {
            assert_eq!(x.pos[d].to_bits(), y.pos[d].to_bits(), "pos of id {}", x.id);
            assert_eq!(x.vel[d].to_bits(), y.vel[d].to_bits(), "vel of id {}", x.id);
        }
        assert_eq!(x.mass.to_bits(), y.mass.to_bits(), "mass of id {}", x.id);
        assert_eq!(x.work.to_bits(), y.work.to_bits(), "work of id {}", x.id);
    }
}

#[test]
fn frame_roundtrip_preserves_the_body_set_exactly() {
    let (bodies, aux, bbox) = sample(177, 3);
    let snap = Snapshot::build(&bodies, &aux, 2, bbox, 4);
    let bytes = snap.to_bytes();
    let back = Snapshot::from_bytes(&bytes).expect("pristine frame parses");
    assert_eq!(back, snap, "parsed snapshot differs from built one");
    let (got, got_aux) = back.decode_all().expect("pristine frame decodes");
    // Decode order is canonical (cell key, id) — compare as id-sorted
    // sets, and check the aux lanes rode along with their rows.
    let want = sorted_by_id(bodies.clone());
    let mut got_pairs: Vec<(Body, [f64; 2])> = got
        .iter()
        .enumerate()
        .map(|(i, b)| (*b, [got_aux[i * 2], got_aux[i * 2 + 1]]))
        .collect();
    got_pairs.sort_by_key(|(b, _)| b.id);
    assert_bit_equal(
        &got_pairs.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        &want,
    );
    let by_id: std::collections::HashMap<u64, usize> =
        bodies.iter().enumerate().map(|(i, b)| (b.id, i)).collect();
    for (b, a) in &got_pairs {
        let i = by_id[&b.id];
        assert_eq!(a[0].to_bits(), aux[i * 2].to_bits());
        assert_eq!(a[1].to_bits(), aux[i * 2 + 1].to_bits());
    }
}

#[test]
fn partition_assigns_every_body_to_exactly_its_cell() {
    let (bodies, _, bbox) = sample(240, 11);
    for level in [0u32, 1, 3, 6] {
        let snap = Snapshot::build(&bodies, &[], 0, bbox, level);
        assert_eq!(snap.n_rows, bodies.len() as u64);
        let mut seen = 0u64;
        for i in 0..snap.cells.len() {
            let cell = &snap.cells[i];
            let (decoded, _) = snap.decode_cell(i).expect("decodes");
            assert_eq!(decoded.len(), cell.n as usize);
            seen += u64::from(cell.n);
            for b in &decoded {
                // Membership is exactly the Morton cell of the position.
                let key = bbox.key_of(b.pos).ancestor_at(level).0;
                assert_eq!(key, cell.key, "body {} filed in wrong cell", b.id);
                assert!(cell.id_min <= b.id && b.id <= cell.id_max);
            }
            // Within a cell, rows are id-sorted (the canonical order).
            for w in decoded.windows(2) {
                assert!(w[0].id < w[1].id);
            }
        }
        assert_eq!(seen, bodies.len() as u64, "level {level}: bodies lost");
    }
}

#[test]
fn weird_f64_values_survive_bit_for_bit() {
    // Positions must stay finite and inside the bbox (they drive cell
    // keying); every other lane takes the worst f64s there are.
    let weird = [
        f64::from_bits(0x7FF8_0000_DEAD_BEEF), // NaN with payload
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE / 8.0, // subnormal
        f64::MAX,
        -f64::MIN_POSITIVE,
        1.0 + f64::EPSILON,
    ];
    let bodies: Vec<Body> = weird
        .iter()
        .enumerate()
        .map(|(i, &w)| Body {
            pos: [i as f64 * 0.125 - 0.5, -0.25, 0.25],
            vel: [w, -w, w],
            mass: w,
            id: i as u64 * 7 + 1,
            work: w,
        })
        .collect();
    let aux: Vec<f64> = weird.iter().flat_map(|&w| [w, -w, w]).collect();
    let bbox = BBox::enclosing(bodies.iter().map(|b| b.pos));
    let snap = Snapshot::build(&bodies, &aux, 3, bbox, 2);
    let back = Snapshot::from_bytes(&snap.to_bytes()).expect("parses");
    let (got, got_aux) = back.decode_all().expect("decodes");
    let mut got: Vec<(Body, Vec<f64>)> = got
        .iter()
        .enumerate()
        .map(|(i, b)| (*b, got_aux[i * 3..i * 3 + 3].to_vec()))
        .collect();
    got.sort_by_key(|(b, _)| b.id);
    for ((b, a), (w, i)) in got.iter().zip(weird.iter().zip(0..)) {
        assert_eq!(b.id, i as u64 * 7 + 1);
        assert_eq!(b.vel[0].to_bits(), w.to_bits());
        assert_eq!(b.vel[1].to_bits(), (-w).to_bits());
        assert_eq!(b.mass.to_bits(), w.to_bits());
        assert_eq!(b.work.to_bits(), w.to_bits());
        assert_eq!(a[0].to_bits(), w.to_bits());
        assert_eq!(a[1].to_bits(), (-w).to_bits());
        assert_eq!(a[2].to_bits(), w.to_bits());
    }
}

#[test]
fn serialization_is_canonical_in_input_order() {
    let (bodies, aux, bbox) = sample(150, 29);
    let snap = Snapshot::build(&bodies, &aux, 2, bbox, 4);
    let bytes = snap.to_bytes();
    // Any permutation of the input rows yields the identical frame.
    let mut rng = Rng(99);
    let mut perm: Vec<usize> = (0..bodies.len()).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, (rng.next() % (i as u64 + 1)) as usize);
    }
    let shuffled: Vec<Body> = perm.iter().map(|&i| bodies[i]).collect();
    let shuffled_aux: Vec<f64> = perm
        .iter()
        .flat_map(|&i| [aux[i * 2], aux[i * 2 + 1]])
        .collect();
    let again = Snapshot::build(&shuffled, &shuffled_aux, 2, bbox, 4).to_bytes();
    assert_eq!(bytes, again, "input order leaked into the frame bytes");
    // And re-serializing the parsed snapshot is a fixed point.
    let back = Snapshot::from_bytes(&bytes).expect("parses");
    assert_eq!(back.to_bytes(), bytes);
}

#[test]
fn pruning_never_drops_a_matching_cell() {
    let (bodies, _, bbox) = sample(300, 41);
    let snap = Snapshot::build(&bodies, &[], 0, bbox, 3);
    let mut rng = Rng(7);

    // Key-range pushdown: every cell holding a body whose full-depth
    // key lands in [lo, hi] must survive.
    for _ in 0..50 {
        let a = rng.next();
        let b = rng.next();
        let (lo, hi) = (a.min(b), a.max(b));
        let kept = snap.cells_in_key_range(lo, hi);
        for (i, cell) in snap.cells.iter().enumerate() {
            let (decoded, _) = snap.decode_cell(i).expect("decodes");
            let holds_match = decoded.iter().any(|bd| {
                let k = bbox.key_of(bd.pos).key_range();
                // Any full-depth key under this body's leaf cell that
                // intersects the probe means the cell must be read.
                k.0 .0 <= hi && lo <= k.1 .0
            });
            if holds_match {
                assert!(
                    kept.contains(&i),
                    "cell {:#x} holds keys in [{lo:#x},{hi:#x}] but was pruned",
                    cell.key
                );
            }
        }
    }

    // Id pushdown: the cells_for_id candidates must cover the cell that
    // actually holds each id.
    for bd in &bodies {
        let cands = snap.cells_for_id(bd.id);
        let holder = (0..snap.cells.len())
            .find(|&i| {
                snap.decode_cell(i)
                    .expect("decodes")
                    .0
                    .iter()
                    .any(|x| x.id == bd.id)
            })
            .expect("every body is somewhere");
        assert!(cands.contains(&holder), "id {} pruned away", bd.id);
    }

    // Geometric pushdown: a conservative sphere test keeps every cell
    // containing a body inside the sphere.
    for _ in 0..20 {
        let c = [
            (rng.f64() - 0.5) * 2.0 * bbox.half + bbox.center[0],
            (rng.f64() - 0.5) * 2.0 * bbox.half + bbox.center[1],
            (rng.f64() - 0.5) * 2.0 * bbox.half + bbox.center[2],
        ];
        let r = rng.f64() * bbox.half;
        let kept = snap.prune(|center, half| {
            // Conservative: the sphere intersects the cell's bounding
            // ball.
            let d2: f64 = (0..3).map(|d| (center[d] - c[d]).powi(2)).sum();
            d2.sqrt() <= r + half * 3f64.sqrt()
        });
        for i in 0..snap.cells.len() {
            let (decoded, _) = snap.decode_cell(i).expect("decodes");
            let inside = decoded.iter().any(|bd| {
                let d2: f64 = (0..3).map(|d| (bd.pos[d] - c[d]).powi(2)).sum();
                d2.sqrt() <= r
            });
            if inside {
                assert!(kept.contains(&i), "cell {i} holds an in-sphere body");
            }
        }
    }
}

/// Drift the system a little, like one integrator step would.
fn evolve(bodies: &mut [Body], rng: &mut Rng, dt: f64) {
    for b in bodies.iter_mut() {
        for d in 0..3 {
            b.vel[d] += (rng.f64() - 0.5) * 1e-3;
            b.pos[d] += dt * b.vel[d];
        }
    }
}

#[test]
fn generation_chain_materializes_every_committed_state() {
    let (mut bodies, _, _) = sample(200, 55);
    let mut rng = Rng(123);
    let mut log = GenerationLog::new(StoreConfig::default(), 0);
    let mut states: Vec<(u64, Vec<Body>)> = Vec::new();
    for step in 0..6u64 {
        evolve(&mut bodies, &mut rng, 1e-3);
        log.commit(step, &bodies, &[]);
        states.push((step, bodies.clone()));
    }
    assert_eq!(log.generations(), 6);
    // The first record is full; with small motion, later ones are
    // deltas and the ledger shows the savings.
    assert_eq!(
        record_kind(log.record(0).expect("gen 0").bytes()),
        Ok(RecordKind::Full)
    );
    assert!(
        matches!(
            record_kind(log.record(5).expect("gen 5").bytes()),
            Ok(RecordKind::Delta { .. })
        ),
        "small motion should delta-compress"
    );
    assert!(
        log.commit_bytes < log.full_bytes,
        "deltas not smaller: {} vs {}",
        log.commit_bytes,
        log.full_bytes
    );
    for (step, want) in &states {
        let snap = log.materialize(*step).expect("committed step");
        let (got, _) = snap.decode_all().expect("decodes");
        assert_bit_equal(&sorted_by_id(got), &sorted_by_id(want.clone()));
    }
    // The restore-side twin over raw records agrees.
    let records: Vec<(u64, Vec<u8>)> = log
        .steps()
        .map(|s| (s, log.record(s).expect("present").bytes().to_vec()))
        .collect();
    for (step, want) in &states {
        let snap = store::log::materialize_records(&records, *step).expect("materializes");
        let (got, _) = snap.decode_all().expect("decodes");
        assert_bit_equal(&sorted_by_id(got), &sorted_by_id(want.clone()));
    }
}

#[test]
fn snapshot_cache_is_a_bounded_lru() {
    let (bodies, _, _) = sample(60, 77);
    let mut log = GenerationLog::new(StoreConfig::default(), 0);
    for step in 0..8u64 {
        log.commit(step, &bodies, &[]);
    }
    let mut cache = SnapshotCache::new(2);
    for step in 0..8u64 {
        cache
            .get_or_try_insert(step, || log.materialize(step))
            .expect("materializes");
    }
    assert!(cache.peak <= 2, "cache grew past its bound: {}", cache.peak);
    assert_eq!(cache.misses, 8);
    // Most-recent entries hit without re-materializing.
    let hit = |_s: u64| -> Result<store::Snapshot, store::StoreError> {
        panic!("recent generation must be cached")
    };
    cache.get_or_try_insert(7, || hit(7)).expect("hit");
    cache.get_or_try_insert(6, || hit(6)).expect("hit");
    assert_eq!(cache.hits, 2);
}
