//! Corruption sweep over the store's wire frames, mirroring the ckpt
//! sweep: every single-bit flip and every truncation of a full snapshot
//! frame or a delta frame must surface as a typed [`StoreError`] by the
//! time the damaged bytes are decoded — never as silently different
//! physics. Chunk CRCs are verified lazily, so the full-frame property
//! is "open + decode-all fails", not "open fails": a flip in a cell
//! chunk parses fine and is caught exactly when that cell is read.

use hot::models::plummer;
use hot::BBox;
use store::{Delta, GenerationLog, Snapshot, StoreConfig, StoreError};

fn sample_frames() -> (Vec<u8>, Vec<u8>) {
    let mut bodies = plummer(64, 9);
    let aux: Vec<f64> = (0..bodies.len()).map(|i| i as f64 * 0.5).collect();
    let bbox = BBox::enclosing(bodies.iter().map(|b| b.pos));
    let base = Snapshot::build(&bodies, &aux, 1, bbox, 3);
    for b in bodies.iter_mut() {
        b.pos[0] += 1e-6;
        b.work += 1.0;
    }
    let cur = Snapshot::build(&bodies, &aux, 1, bbox, 3);
    let delta = Delta::build(&base, &cur, 4);
    (base.to_bytes(), delta.to_bytes())
}

/// Open a full frame and force every cell through decode, returning the
/// first typed error anywhere in the path.
fn open_and_decode(bytes: &[u8]) -> Result<(), StoreError> {
    let snap = Snapshot::from_bytes(bytes)?;
    snap.decode_all()?;
    Ok(())
}

#[test]
fn every_bit_flip_in_a_full_frame_is_detected() {
    let (full, _) = sample_frames();
    assert_eq!(open_and_decode(&full), Ok(()), "pristine frame must read");
    for i in 0..full.len() {
        for bit in 0..8 {
            let mut c = full.clone();
            c[i] ^= 1 << bit;
            assert!(
                open_and_decode(&c).is_err(),
                "bit {bit} of byte {i}/{} flipped but the frame still decoded",
                full.len()
            );
        }
    }
}

#[test]
fn every_full_frame_truncation_is_detected() {
    let (full, _) = sample_frames();
    for len in 0..full.len() {
        assert!(
            open_and_decode(&full[..len]).is_err(),
            "truncation to {len} bytes decoded"
        );
    }
}

#[test]
fn every_bit_flip_in_a_delta_frame_is_detected() {
    // Delta frames carry one whole-payload CRC: any flip anywhere rots
    // the whole record (and via the generation log, the whole
    // generation — the fallback path's unit of loss).
    let (_, delta) = sample_frames();
    assert!(Delta::from_bytes(&delta).is_ok(), "pristine delta parses");
    for i in 0..delta.len() {
        for bit in 0..8 {
            let mut c = delta.clone();
            c[i] ^= 1 << bit;
            assert!(
                Delta::from_bytes(&c).is_err(),
                "bit {bit} of delta byte {i} flipped but the frame still parsed"
            );
        }
    }
}

#[test]
fn every_delta_truncation_is_detected() {
    let (_, delta) = sample_frames();
    for len in 0..delta.len() {
        assert!(
            Delta::from_bytes(&delta[..len]).is_err(),
            "delta truncation to {len} bytes parsed"
        );
    }
}

#[test]
fn a_rotten_record_rots_the_generations_it_feeds() {
    // A flipped byte in the middle of a chain is discovered when a
    // generation that *depends* on that record materializes; earlier
    // generations still decode — exactly the fallback the chaos
    // harness leans on.
    let mut bodies = plummer(80, 21);
    let mut log = GenerationLog::new(StoreConfig::default(), 0);
    for step in 0..4u64 {
        for b in bodies.iter_mut() {
            b.pos[1] += 1e-6;
        }
        log.commit(step, &bodies, &[]);
    }
    let records: Vec<(u64, Vec<u8>)> = log
        .steps()
        .map(|s| (s, log.record(s).expect("present").bytes().to_vec()))
        .collect();
    for (s, _) in &records {
        assert!(store::log::materialize_records(&records, *s).is_ok());
    }
    let mut rotten = records.clone();
    let mid = rotten[2].1.len() / 2;
    rotten[2].1[mid] ^= 0x08;
    for (s, _) in &records {
        let got = store::log::materialize_records(&rotten, *s);
        if *s < 2 {
            assert!(got.is_ok(), "generation {s} does not depend on the rot");
        } else {
            assert!(got.is_err(), "generation {s} materialized through rot");
        }
    }
}

#[test]
fn wrong_magic_is_typed() {
    let (mut full, mut delta) = sample_frames();
    full[0] = b'X';
    assert_eq!(Snapshot::from_bytes(&full), Err(StoreError::BadMagic));
    delta[0] = b'X';
    assert_eq!(Delta::from_bytes(&delta), Err(StoreError::BadMagic));
    assert_eq!(store::record_kind(b"nonsense"), Err(StoreError::BadMagic));
    assert_eq!(store::record_kind(b"abc"), Err(StoreError::Truncated));
}
