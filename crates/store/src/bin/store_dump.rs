//! `store_dump` — inspect a columnar snapshot or delta frame.
//!
//! ```text
//! # write a demo snapshot + delta pair, then dump them
//! cargo run --release -p store --bin store_dump -- --demo /tmp/snap
//! cargo run --release -p store --bin store_dump -- /tmp/snap.full
//! cargo run --release -p store --bin store_dump -- /tmp/snap.delta
//!
//! # decode one cell's rows
//! cargo run --release -p store --bin store_dump -- /tmp/snap.full --cell 0
//! ```

use store::{record_kind, Delta, RecordKind, Snapshot, ENC_SAME, ENC_XRLE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: store_dump <frame-file> [--cell N] | --demo <prefix>");
        std::process::exit(2);
    }
    if args[0] == "--demo" {
        let prefix = args.get(1).map(String::as_str).unwrap_or("/tmp/snap");
        demo(prefix);
        return;
    }
    let bytes = match std::fs::read(&args[0]) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("store_dump: {}: {e}", args[0]);
            std::process::exit(1);
        }
    };
    let cell = args
        .iter()
        .position(|a| a == "--cell")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    if let Err(e) = dump(&bytes, cell) {
        eprintln!("store_dump: {}: {e}", args[0]);
        std::process::exit(1);
    }
}

fn dump(bytes: &[u8], cell: Option<usize>) -> Result<(), store::StoreError> {
    match record_kind(bytes)? {
        RecordKind::Full => dump_full(bytes, cell),
        RecordKind::Delta { .. } => dump_delta(bytes),
    }
}

fn dump_full(bytes: &[u8], cell: Option<usize>) -> Result<(), store::StoreError> {
    let snap = Snapshot::from_bytes(bytes)?;
    println!(
        "full snapshot: {} bytes, {} rows, {} cells at level {}, {} aux lanes",
        bytes.len(),
        snap.n_rows,
        snap.cells.len(),
        snap.cell_level,
        snap.n_aux
    );
    println!(
        "bbox center ({:+.6}, {:+.6}, {:+.6}) half {:.6}",
        snap.bbox.center[0], snap.bbox.center[1], snap.bbox.center[2], snap.bbox.half
    );
    println!(
        "{:>4} {:>18} {:>6} {:>12} {:>12} {:>8}",
        "cell", "key", "rows", "id_min", "id_max", "bytes"
    );
    for i in 0..snap.cells.len() {
        let c = &snap.cells[i];
        let total: usize = c.cols.iter().map(|ch| ch.bytes.len()).sum();
        println!(
            "{:>4} {:>#18x} {:>6} {:>12} {:>12} {:>8}",
            i, c.key, c.n, c.id_min, c.id_max, total
        );
    }
    if let Some(i) = cell {
        if i >= snap.cells.len() {
            eprintln!("cell {i} out of range ({} cells)", snap.cells.len());
            std::process::exit(1);
        }
        let (bodies, _aux) = snap.decode_cell(i)?;
        let (center, half) = snap.cell_geometry(i);
        println!(
            "\ncell {i} geometry: center ({:+.6}, {:+.6}, {:+.6}) half {:.6}",
            center[0], center[1], center[2], half
        );
        for b in &bodies {
            println!(
                "  id {:>6}  pos ({:+.6}, {:+.6}, {:+.6})  mass {:.6}",
                b.id, b.pos[0], b.pos[1], b.pos[2], b.mass
            );
        }
    }
    Ok(())
}

fn dump_delta(bytes: &[u8]) -> Result<(), store::StoreError> {
    let d = Delta::from_bytes(bytes)?;
    println!(
        "delta frame: {} bytes, base step {}, {} rows after apply",
        bytes.len(),
        d.base_step,
        d.n_rows
    );
    println!(
        "{} dirty cells, {} removed cells",
        d.dirty.len(),
        d.removed.len()
    );
    for dc in &d.dirty {
        let same = dc.cols.iter().filter(|(e, _)| *e == ENC_SAME).count();
        let xor = dc.cols.iter().filter(|(e, _)| *e == ENC_XRLE).count();
        let shipped: usize = dc.cols.iter().map(|(_, b)| b.len()).sum();
        println!(
            "  cell {:#x}: {} rows, {} cols same / {} xor-rle / {} full, {} bytes",
            dc.key,
            dc.n,
            same,
            xor,
            dc.cols.len() - same - xor,
            shipped
        );
    }
    Ok(())
}

/// Write a small deterministic snapshot + delta pair for inspection.
fn demo(prefix: &str) {
    let ics = hot::models::plummer(96, 42);
    let mut log = store::GenerationLog::new(store::StoreConfig::default(), 0);
    log.commit(0, &ics, &[]).to_vec();
    let moved: Vec<hot::Body> = ics
        .iter()
        .map(|b| {
            let mut m = *b;
            for d in 0..3 {
                m.pos[d] += m.vel[d] * 1e-3;
            }
            m
        })
        .collect();
    log.commit(1, &moved, &[]);
    let full = log.record(0).unwrap().bytes().to_vec();
    let delta = log.record(1).unwrap().bytes().to_vec();
    let (fp, dp) = (format!("{prefix}.full"), format!("{prefix}.delta"));
    std::fs::write(&fp, &full).expect("write full frame");
    std::fs::write(&dp, &delta).expect("write delta frame");
    println!(
        "wrote {fp} ({} bytes) and {dp} ({} bytes)",
        full.len(),
        delta.len()
    );
}
