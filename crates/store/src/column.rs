//! Per-column codecs. A cell chunk is one column of one cell:
//!
//! * **ids** — the cell's ids sorted ascending, encoded as a varint
//!   first value followed by varint strictly-positive deltas. Morton
//!   order clusters ids created together, so deltas are small.
//! * **f64** — raw IEEE-754 bits, byte-shuffled: plane `k` holds byte
//!   `k` of every value. Neighbouring values share exponent and high
//!   mantissa bytes, so planes are highly repetitive — and, more
//!   importantly, the XOR of two generations' shuffled planes is mostly
//!   zero, which the delta RLE exploits. Bit-exact for every f64,
//!   including NaN payloads and -0.0.
//! * **xor-rle** — a dirty column in an incremental delta: the XOR of
//!   the new and base shuffled payloads, run-length encoded as
//!   alternating (zero-run, literal-run) varint pairs.

use crate::varint::{get_varint, put_varint};
use crate::StoreError;

/// Encode a sorted-ascending id column.
pub fn encode_ids(ids: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ids.len() * 2 + 8);
    if let Some(&first) = ids.first() {
        put_varint(&mut out, first);
        let mut prev = first;
        for &id in &ids[1..] {
            debug_assert!(id > prev, "cell ids must be strictly ascending");
            put_varint(&mut out, id - prev);
            prev = id;
        }
    }
    out
}

/// Decode an id column of `n` entries; enforces strict ascent so a
/// corrupted chunk cannot smuggle duplicate or reordered ids.
pub fn decode_ids(bytes: &[u8], n: usize) -> Result<Vec<u64>, StoreError> {
    let mut ids = Vec::with_capacity(n);
    let mut pos = 0;
    if n > 0 {
        let mut prev = get_varint(bytes, &mut pos)?;
        ids.push(prev);
        for _ in 1..n {
            let delta = get_varint(bytes, &mut pos)?;
            if delta == 0 {
                return Err(StoreError::BadEncoding("id delta of zero"));
            }
            prev = prev
                .checked_add(delta)
                .ok_or(StoreError::BadEncoding("id delta overflows u64"))?;
            ids.push(prev);
        }
    }
    if pos != bytes.len() {
        return Err(StoreError::BadEncoding("trailing bytes after id column"));
    }
    Ok(ids)
}

/// Byte-shuffle an f64 column: output plane `k` is byte `k` (LE) of
/// every value, planes concatenated low to high.
pub fn shuffle_f64(values: &[f64]) -> Vec<u8> {
    let n = values.len();
    let mut out = vec![0u8; n * 8];
    for (i, v) in values.iter().enumerate() {
        let b = v.to_bits().to_le_bytes();
        for (k, &byte) in b.iter().enumerate() {
            out[k * n + i] = byte;
        }
    }
    out
}

/// Invert [`shuffle_f64`]; `bytes` must be exactly `8 * n` long.
pub fn unshuffle_f64(bytes: &[u8], n: usize) -> Result<Vec<f64>, StoreError> {
    if bytes.len() != n * 8 {
        return Err(StoreError::BadEncoding("f64 column length mismatch"));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut b = [0u8; 8];
        for (k, byte) in b.iter_mut().enumerate() {
            *byte = bytes[k * n + i];
        }
        out.push(f64::from_bits(u64::from_le_bytes(b)));
    }
    Ok(out)
}

/// XOR `new` against `base` and run-length encode the result as
/// alternating (zero-run, literal-run) pairs. Both slices must be the
/// same length (same row count, same column).
pub fn xor_rle_encode(base: &[u8], new: &[u8]) -> Vec<u8> {
    debug_assert_eq!(base.len(), new.len());
    let x: Vec<u8> = base.iter().zip(new).map(|(a, b)| a ^ b).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < x.len() {
        let zstart = i;
        while i < x.len() && x[i] == 0 {
            i += 1;
        }
        put_varint(&mut out, (i - zstart) as u64);
        let lstart = i;
        // A literal run ends at the next "long enough" zero run: short
        // zero gaps cost less as literals than as a new pair header.
        while i < x.len() {
            if x[i] == 0 {
                let mut j = i;
                while j < x.len() && x[j] == 0 {
                    j += 1;
                }
                if j - i >= 3 || j == x.len() {
                    break;
                }
                i = j;
            } else {
                i += 1;
            }
        }
        put_varint(&mut out, (i - lstart) as u64);
        out.extend_from_slice(&x[lstart..i]);
    }
    out
}

/// Decode an xor-rle payload against its base, producing the new
/// column bytes. `base.len()` fixes the expected decoded length.
pub fn xor_rle_decode(base: &[u8], rle: &[u8]) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::with_capacity(base.len());
    let mut pos = 0;
    while out.len() < base.len() {
        let zeros = get_varint(rle, &mut pos)? as usize;
        let lits = get_varint(rle, &mut pos)? as usize;
        if out.len() + zeros + lits > base.len() {
            return Err(StoreError::BadEncoding("xor-rle overruns the column"));
        }
        out.resize(out.len() + zeros, 0);
        let lit = rle
            .get(pos..pos + lits)
            .ok_or(StoreError::BadEncoding("xor-rle literals truncated"))?;
        out.extend_from_slice(lit);
        pos += lits;
    }
    if pos != rle.len() {
        return Err(StoreError::BadEncoding("trailing bytes after xor-rle"));
    }
    for (o, b) in out.iter_mut().zip(base) {
        *o ^= b;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        let ids = vec![3, 4, 9, 1000, 1001, u64::MAX];
        let enc = encode_ids(&ids);
        assert_eq!(decode_ids(&enc, ids.len()).unwrap(), ids);
        assert!(decode_ids(&enc, ids.len() - 1).is_err());
        assert_eq!(decode_ids(&[], 0).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn f64_roundtrip_preserves_bits() {
        let values = vec![
            0.0,
            -0.0,
            1.5,
            f64::NAN,
            f64::from_bits(0x7FF8_0000_DEAD_BEEF),
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 2.0,
        ];
        let enc = shuffle_f64(&values);
        let dec = unshuffle_f64(&enc, values.len()).unwrap();
        for (a, b) in values.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn xor_rle_roundtrips_and_shrinks_similar_columns() {
        let base: Vec<f64> = (0..64).map(|i| 1.0 + i as f64 * 0.125).collect();
        let new: Vec<f64> = base.iter().map(|v| v + 1e-9).collect();
        let (b, n) = (shuffle_f64(&base), shuffle_f64(&new));
        let rle = xor_rle_encode(&b, &n);
        assert_eq!(xor_rle_decode(&b, &rle).unwrap(), n);
        assert!(rle.len() < n.len(), "{} !< {}", rle.len(), n.len());
    }
}
