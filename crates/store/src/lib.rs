//! # store — cell-indexed columnar snapshot store
//!
//! A universe snapshot is partitioned into Morton oct-cells at a fixed
//! level; each cell stores its bodies as SoA column chunks (ids,
//! pos/vel/mass/work, optional aux lanes) with per-column lightweight
//! compression, and a crc-framed footer index maps cell key-ranges to
//! chunk offsets. Readers prune on the footer alone — a region, cone,
//! kNN, point, or time-travel scan decodes only the cells whose key
//! range (or geometry, or id range) survives the predicate.
//!
//! On top of single snapshots, [`Delta`] encodes a generation as the
//! set of *dirty cells* against a base generation (unchanged columns
//! are elided, changed f64 columns ship as XOR+RLE against the base),
//! and [`GenerationLog`] manages full/delta chains so a checkpoint
//! commit costs only what actually changed.
//!
//! The crate is dependency-free (workspace `hot` for Morton keys and
//! the `Body` row type, `ckpt` for the shared CRC-32): formats are
//! hand-rolled, little-endian, and byte-deterministic — the same
//! universe always serializes to the same bytes.

pub mod column;
pub mod delta;
pub mod log;
pub mod snapshot;
pub mod varint;

pub use delta::Delta;
pub use log::{GenRecord, GenerationLog, SnapshotCache, StoreConfig};
pub use snapshot::{CellChunk, CellData, Snapshot};

/// Magic prefix of a full snapshot frame.
pub const MAGIC: [u8; 8] = *b"SSSTORE1";
/// Magic prefix of an incremental delta frame.
pub const DELTA_MAGIC: [u8; 8] = *b"SSDELTA1";

/// Column encodings. `Same`/`XorRle` appear only inside delta frames.
pub const ENC_IDS: u8 = 0;
pub const ENC_SHUF: u8 = 1;
pub const ENC_SAME: u8 = 2;
pub const ENC_XRLE: u8 = 3;

/// Typed decode failures. Like `ckpt`, corruption anywhere in a frame
/// must surface as one of these — never as silently different physics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Frame shorter than its own framing claims.
    Truncated,
    /// Leading magic does not match a store frame.
    BadMagic,
    /// Footer or delta-frame CRC mismatch.
    BadCrc,
    /// A cell's column chunk failed its footer CRC.
    BadChunkCrc { cell: u64 },
    /// Structurally invalid content inside a CRC-clean frame.
    BadEncoding(&'static str),
    /// A delta applied against the wrong base generation.
    BaseMismatch(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Truncated => write!(f, "store frame truncated"),
            StoreError::BadMagic => write!(f, "bad store magic"),
            StoreError::BadCrc => write!(f, "store frame crc mismatch"),
            StoreError::BadChunkCrc { cell } => {
                write!(f, "column chunk crc mismatch in cell {cell:#x}")
            }
            StoreError::BadEncoding(what) => write!(f, "bad store encoding: {what}"),
            StoreError::BaseMismatch(what) => write!(f, "delta base mismatch: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What kind of record a committed byte string is, by magic sniff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    Full,
    Delta { base_step: u64 },
}

/// Classify a committed record without fully decoding it. The delta
/// base step is read past the magic; full validation happens on decode.
pub fn record_kind(bytes: &[u8]) -> Result<RecordKind, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::Truncated);
    }
    if bytes[..8] == MAGIC {
        Ok(RecordKind::Full)
    } else if bytes[..8] == DELTA_MAGIC {
        let mut cur = Cur::new(&bytes[8..]);
        Ok(RecordKind::Delta {
            base_step: cur.u64()?,
        })
    } else {
        Err(StoreError::BadMagic)
    }
}

/// Bounds-checked little-endian read cursor shared by the frame
/// parsers.
pub(crate) struct Cur<'a> {
    b: &'a [u8],
    pub pos: usize,
}

impl<'a> Cur<'a> {
    pub fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let s = self
            .b
            .get(self.pos..self.pos + n)
            .ok_or(StoreError::Truncated)?;
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64_bits(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    pub fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}
