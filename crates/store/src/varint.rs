//! LEB128 varints. The id column of a cell chunk stores sorted ids as
//! first-value + strictly-positive deltas, so plain (unsigned) varints
//! suffice; the delta RLE codec reuses them for run lengths.

use crate::StoreError;

/// Append `v` as a little-endian base-128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Decode one varint starting at `*pos`, advancing it past the value.
pub fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or(StoreError::BadEncoding("varint ran off the chunk"))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b & 0x7E != 0) {
            return Err(StoreError::BadEncoding("varint overflows u64"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_varint_errors() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for len in 0..buf.len() {
            let mut pos = 0;
            assert!(get_varint(&buf[..len], &mut pos).is_err());
        }
    }
}
