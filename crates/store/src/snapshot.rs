//! Full snapshot frames: cell partition, SoA column chunks, and the
//! crc-framed footer index.
//!
//! ```text
//! +----------+------------------------------+---------------+-----+------+
//! | SSSTORE1 | chunk region (cells x cols)  | footer        | crc | flen |
//! +----------+------------------------------+---------------+-----+------+
//!                                            ^ cell_level, n_aux, n_rows,
//!                                              bbox, then per cell:
//!                                              key, n, id range, and per
//!                                              column (enc, off, len, crc)
//! ```
//!
//! Cells are keyed by the Morton oct-cell of the body position at a
//! fixed `cell_level`, sorted by key; bodies within a cell are sorted
//! by id, so the whole frame is a canonical function of the body *set*
//! (input order never leaks into the bytes). Column chunks carry their
//! own CRC in the footer, verified on decode: a pruned read never pays
//! for — and never trusts — cells it does not touch.

use crate::column::{decode_ids, encode_ids, shuffle_f64, unshuffle_f64};
use crate::{put_f64_bits, put_u32, put_u64, Cur, StoreError, ENC_IDS, ENC_SHUF, MAGIC};
use ckpt::crc32;
use hot::morton::MAX_LEVEL;
use hot::{BBox, Body, Key};

/// Fixed columns before the aux lanes: ids, pos xyz, vel xyz, mass,
/// work.
pub const FIXED_COLS: usize = 9;

/// One encoded column chunk of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellChunk {
    pub enc: u8,
    pub bytes: Vec<u8>,
    pub crc: u32,
}

impl CellChunk {
    pub fn new(enc: u8, bytes: Vec<u8>) -> CellChunk {
        let crc = crc32(&bytes);
        CellChunk { enc, bytes, crc }
    }
}

/// One cell: its Morton key (level-prefixed, at the snapshot's
/// `cell_level`), row count, id range, and one chunk per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellData {
    pub key: u64,
    pub n: u32,
    pub id_min: u64,
    pub id_max: u64,
    pub cols: Vec<CellChunk>,
}

/// An in-memory snapshot: encoded cells plus the footer metadata.
/// Decoding is per-cell and lazy — this is the unit the pushdown
/// readers and the delta codec work on.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub bbox: BBox,
    pub cell_level: u32,
    pub n_aux: u32,
    pub n_rows: u64,
    pub cells: Vec<CellData>,
}

impl Snapshot {
    /// Partition `bodies` (with `n_aux` row-major aux f64 lanes) into
    /// cells of `bbox` at `cell_level` and encode every column. All
    /// body positions must lie inside `bbox` — cell geometry is what
    /// conservative pruning trusts.
    pub fn build(
        bodies: &[Body],
        aux: &[f64],
        n_aux: u32,
        bbox: BBox,
        cell_level: u32,
    ) -> Snapshot {
        assert!(cell_level <= MAX_LEVEL, "cell level beyond Morton depth");
        assert_eq!(aux.len(), bodies.len() * n_aux as usize, "aux lane shape");
        let mut order: Vec<(u64, usize)> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| (bbox.key_of(b.pos).ancestor_at(cell_level).0, i))
            .collect();
        order.sort_by_key(|&(key, i)| (key, bodies[i].id, i));

        let na = n_aux as usize;
        let mut cells = Vec::new();
        let mut start = 0;
        while start < order.len() {
            let key = order[start].0;
            let mut end = start;
            while end < order.len() && order[end].0 == key {
                end += 1;
            }
            let rows: Vec<usize> = order[start..end].iter().map(|&(_, i)| i).collect();
            let ids: Vec<u64> = rows.iter().map(|&i| bodies[i].id).collect();
            let mut cols = Vec::with_capacity(FIXED_COLS + na);
            cols.push(CellChunk::new(ENC_IDS, encode_ids(&ids)));
            let f64_col = |f: &dyn Fn(usize) -> f64| {
                let vals: Vec<f64> = rows.iter().map(|&i| f(i)).collect();
                CellChunk::new(ENC_SHUF, shuffle_f64(&vals))
            };
            for d in 0..3 {
                cols.push(f64_col(&|i| bodies[i].pos[d]));
            }
            for d in 0..3 {
                cols.push(f64_col(&|i| bodies[i].vel[d]));
            }
            cols.push(f64_col(&|i| bodies[i].mass));
            cols.push(f64_col(&|i| bodies[i].work));
            for j in 0..na {
                cols.push(f64_col(&|i| aux[i * na + j]));
            }
            cells.push(CellData {
                key,
                n: rows.len() as u32,
                id_min: ids[0],
                id_max: *ids.last().unwrap(),
                cols,
            });
            start = end;
        }
        Snapshot {
            bbox,
            cell_level,
            n_aux,
            n_rows: bodies.len() as u64,
            cells,
        }
    }

    pub fn n_cols(&self) -> usize {
        FIXED_COLS + self.n_aux as usize
    }

    /// Serialize to the framed wire format (byte-deterministic).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        let mut offsets: Vec<Vec<(u64, u64)>> = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let mut per_col = Vec::with_capacity(cell.cols.len());
            for col in &cell.cols {
                per_col.push((out.len() as u64, col.bytes.len() as u64));
                out.extend_from_slice(&col.bytes);
            }
            offsets.push(per_col);
        }
        let mut footer = Vec::new();
        put_u32(&mut footer, self.cell_level);
        put_u32(&mut footer, self.n_aux);
        put_u64(&mut footer, self.n_rows);
        for d in 0..3 {
            put_f64_bits(&mut footer, self.bbox.center[d]);
        }
        put_f64_bits(&mut footer, self.bbox.half);
        put_u64(&mut footer, self.cells.len() as u64);
        for (cell, per_col) in self.cells.iter().zip(&offsets) {
            put_u64(&mut footer, cell.key);
            put_u32(&mut footer, cell.n);
            put_u64(&mut footer, cell.id_min);
            put_u64(&mut footer, cell.id_max);
            for (col, &(off, len)) in cell.cols.iter().zip(per_col) {
                footer.push(col.enc);
                put_u64(&mut footer, off);
                put_u64(&mut footer, len);
                put_u32(&mut footer, col.crc);
            }
        }
        let fcrc = crc32(&footer);
        let flen = footer.len() as u64;
        out.extend_from_slice(&footer);
        put_u32(&mut out, fcrc);
        put_u64(&mut out, flen);
        out
    }

    /// Parse a framed snapshot. The footer is CRC-checked here; column
    /// chunks keep their footer CRCs and are verified on decode, so a
    /// rotten chunk in a cell a pruned read never touches stays
    /// undetected until — and unless — something reads it.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        if bytes.len() < MAGIC.len() + 12 {
            return Err(StoreError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let flen = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap()) as usize;
        let fcrc = u32::from_le_bytes(bytes[bytes.len() - 12..bytes.len() - 8].try_into().unwrap());
        let chunk_end = bytes
            .len()
            .checked_sub(12 + flen)
            .ok_or(StoreError::Truncated)?;
        if chunk_end < MAGIC.len() {
            return Err(StoreError::Truncated);
        }
        let footer = &bytes[chunk_end..chunk_end + flen];
        if crc32(footer) != fcrc {
            return Err(StoreError::BadCrc);
        }
        let mut cur = Cur::new(footer);
        let cell_level = cur.u32()?;
        if cell_level > MAX_LEVEL {
            return Err(StoreError::BadEncoding("cell level beyond Morton depth"));
        }
        let n_aux = cur.u32()?;
        if n_aux > 64 {
            return Err(StoreError::BadEncoding("implausible aux lane count"));
        }
        let n_rows = cur.u64()?;
        let center = [cur.f64_bits()?, cur.f64_bits()?, cur.f64_bits()?];
        let half = cur.f64_bits()?;
        let bbox = BBox { center, half };
        let n_cells = cur.u64()? as usize;
        let n_cols = FIXED_COLS + n_aux as usize;
        // Footer entries are fixed-width: sanity-bound the count before
        // allocating.
        if n_cells.saturating_mul(28 + n_cols * 21) > footer.len() {
            return Err(StoreError::BadEncoding("cell count exceeds footer"));
        }
        let mut cells = Vec::with_capacity(n_cells);
        let mut prev_key = None;
        let mut rows_seen = 0u64;
        for _ in 0..n_cells {
            let key = cur.u64()?;
            if Key(key).level() != cell_level {
                return Err(StoreError::BadEncoding("cell key at wrong level"));
            }
            if prev_key.is_some_and(|p| key <= p) {
                return Err(StoreError::BadEncoding("cell keys out of order"));
            }
            prev_key = Some(key);
            let n = cur.u32()?;
            if n == 0 {
                return Err(StoreError::BadEncoding("empty cell"));
            }
            rows_seen += u64::from(n);
            let id_min = cur.u64()?;
            let id_max = cur.u64()?;
            if id_min > id_max {
                return Err(StoreError::BadEncoding("inverted id range"));
            }
            let mut cols = Vec::with_capacity(n_cols);
            for c in 0..n_cols {
                let enc = cur.u8()?;
                let want = if c == 0 { ENC_IDS } else { ENC_SHUF };
                if enc != want {
                    return Err(StoreError::BadEncoding("unexpected column encoding"));
                }
                let off = cur.u64()? as usize;
                let len = cur.u64()? as usize;
                let crc = cur.u32()?;
                let end = off.checked_add(len).ok_or(StoreError::Truncated)?;
                if off < MAGIC.len() || end > chunk_end {
                    return Err(StoreError::BadEncoding("chunk offset out of range"));
                }
                cols.push(CellChunk {
                    enc,
                    bytes: bytes[off..end].to_vec(),
                    crc,
                });
            }
            cells.push(CellData {
                key,
                n,
                id_min,
                id_max,
                cols,
            });
        }
        if !cur.done() {
            return Err(StoreError::BadEncoding("trailing bytes in footer"));
        }
        if rows_seen != n_rows {
            return Err(StoreError::BadEncoding("row count mismatch"));
        }
        Ok(Snapshot {
            bbox,
            cell_level,
            n_aux,
            n_rows,
            cells,
        })
    }

    /// Geometric center and half-size of cell `i`.
    pub fn cell_geometry(&self, i: usize) -> ([f64; 3], f64) {
        self.bbox.cell_geometry(Key(self.cells[i].key))
    }

    /// Full-depth Morton key range covered by cell `i` — what the
    /// footer index maps to chunk offsets.
    pub fn key_range(&self, i: usize) -> (u64, u64) {
        let (lo, hi) = Key(self.cells[i].key).key_range();
        (lo.0, hi.0)
    }

    /// Indices of cells whose full-depth key range intersects
    /// `[lo, hi]` (inclusive). Never drops a cell that could hold a
    /// matching key.
    pub fn cells_in_key_range(&self, lo: u64, hi: u64) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&i| {
                let (clo, chi) = self.key_range(i);
                clo <= hi && lo <= chi
            })
            .collect()
    }

    /// Indices of cells surviving a conservative geometric predicate:
    /// `keep(center, half)` must return true whenever the cell *could*
    /// contain a match. Cells it rejects are never decoded.
    pub fn prune(&self, mut keep: impl FnMut([f64; 3], f64) -> bool) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&i| {
                let (c, h) = self.cell_geometry(i);
                keep(c, h)
            })
            .collect()
    }

    /// Indices of cells whose id range admits `id`.
    pub fn cells_for_id(&self, id: u64) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&i| self.cells[i].id_min <= id && id <= self.cells[i].id_max)
            .collect()
    }

    /// Decode one cell to bodies (sorted by id) plus its row-major aux
    /// lanes. Verifies every column chunk CRC.
    pub fn decode_cell(&self, i: usize) -> Result<(Vec<Body>, Vec<f64>), StoreError> {
        let cell = &self.cells[i];
        let n = cell.n as usize;
        for col in &cell.cols {
            if crc32(&col.bytes) != col.crc {
                return Err(StoreError::BadChunkCrc { cell: cell.key });
            }
        }
        let ids = decode_ids(&cell.cols[0].bytes, n)?;
        if ids.first() != Some(&cell.id_min) || ids.last() != Some(&cell.id_max) {
            return Err(StoreError::BadEncoding("id column outside footer range"));
        }
        let mut f64_cols = Vec::with_capacity(self.n_cols() - 1);
        for col in &cell.cols[1..] {
            f64_cols.push(unshuffle_f64(&col.bytes, n)?);
        }
        let na = self.n_aux as usize;
        let mut bodies = Vec::with_capacity(n);
        let mut aux = Vec::with_capacity(n * na);
        for r in 0..n {
            bodies.push(Body {
                pos: [f64_cols[0][r], f64_cols[1][r], f64_cols[2][r]],
                vel: [f64_cols[3][r], f64_cols[4][r], f64_cols[5][r]],
                mass: f64_cols[6][r],
                id: ids[r],
                work: f64_cols[7][r],
            });
            for j in 0..na {
                aux.push(f64_cols[8 + j][r]);
            }
        }
        Ok((bodies, aux))
    }

    /// Decode every cell in key order: the canonical (cell-key, id)
    /// ordering of the whole snapshot.
    pub fn decode_all(&self) -> Result<(Vec<Body>, Vec<f64>), StoreError> {
        let mut bodies = Vec::with_capacity(self.n_rows as usize);
        let mut aux = Vec::with_capacity(self.n_rows as usize * self.n_aux as usize);
        for i in 0..self.cells.len() {
            let (b, a) = self.decode_cell(i)?;
            bodies.extend(b);
            aux.extend(a);
        }
        Ok((bodies, aux))
    }
}
