//! Incremental dirty-cell deltas between two snapshots of the same
//! bbox/level. A delta records removed cell keys plus, per dirty cell,
//! one chunk per column: `Same` (column bytes identical to the base —
//! nothing shipped), `XorRle` (byte-shuffled f64 column XORed against
//! the base and run-length encoded), or a full re-encoding (new cell,
//! or row count changed). Unchanged cells are not mentioned at all.
//!
//! ```text
//! +----------+---------------------------------------------+-----+
//! | SSDELTA1 | base_step, level, n_aux, n_rows, bbox,      | crc |
//! |          | removed keys, dirty cells (inline chunks)   |     |
//! +----------+---------------------------------------------+-----+
//! ```
//!
//! The whole payload is covered by one trailing CRC: any corruption
//! makes the *generation* rotten, and recovery falls back to its base.

use crate::column::{xor_rle_decode, xor_rle_encode};
use crate::snapshot::{CellChunk, CellData, Snapshot};
use crate::{
    put_f64_bits, put_u32, put_u64, Cur, StoreError, DELTA_MAGIC, ENC_IDS, ENC_SAME, ENC_SHUF,
    ENC_XRLE,
};
use ckpt::crc32;
use hot::morton::MAX_LEVEL;
use hot::BBox;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaCell {
    pub key: u64,
    pub n: u32,
    pub id_min: u64,
    pub id_max: u64,
    /// One chunk per column; `enc == ENC_SAME` ships no bytes.
    pub cols: Vec<(u8, Vec<u8>)>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub base_step: u64,
    pub cell_level: u32,
    pub n_aux: u32,
    pub n_rows: u64,
    pub bbox: BBox,
    pub removed: Vec<u64>,
    pub dirty: Vec<DeltaCell>,
}

impl Delta {
    /// Diff `cur` against `base`. Both must share bbox (bit-exact),
    /// cell level, and aux shape — the [`GenerationLog`] only emits
    /// deltas when the base bbox is reused.
    ///
    /// [`GenerationLog`]: crate::log::GenerationLog
    pub fn build(base: &Snapshot, cur: &Snapshot, base_step: u64) -> Delta {
        assert_eq!(base.cell_level, cur.cell_level, "delta across cell levels");
        assert_eq!(base.n_aux, cur.n_aux, "delta across aux shapes");
        assert!(
            bbox_bits(&base.bbox) == bbox_bits(&cur.bbox),
            "delta across bounding boxes"
        );
        let removed: Vec<u64> = base
            .cells
            .iter()
            .filter(|c| cur.cells.binary_search_by_key(&c.key, |x| x.key).is_err())
            .map(|c| c.key)
            .collect();
        let mut dirty = Vec::new();
        for cell in &cur.cells {
            let base_cell = base
                .cells
                .binary_search_by_key(&cell.key, |x| x.key)
                .ok()
                .map(|i| &base.cells[i]);
            let mut cols = Vec::with_capacity(cell.cols.len());
            let mut all_same = base_cell.is_some();
            for (c, col) in cell.cols.iter().enumerate() {
                let chunk = match base_cell {
                    Some(b) if b.cols[c].bytes == col.bytes => (ENC_SAME, Vec::new()),
                    Some(b) if col.enc == ENC_SHUF && b.n == cell.n => {
                        let rle = xor_rle_encode(&b.cols[c].bytes, &col.bytes);
                        // RLE can lose to a churned column; ship
                        // whichever is smaller (deterministically).
                        if rle.len() < col.bytes.len() {
                            (ENC_XRLE, rle)
                        } else {
                            (col.enc, col.bytes.clone())
                        }
                    }
                    _ => (col.enc, col.bytes.clone()),
                };
                if chunk.0 != ENC_SAME {
                    all_same = false;
                }
                cols.push(chunk);
            }
            if !all_same {
                dirty.push(DeltaCell {
                    key: cell.key,
                    n: cell.n,
                    id_min: cell.id_min,
                    id_max: cell.id_max,
                    cols,
                });
            }
        }
        Delta {
            base_step,
            cell_level: cur.cell_level,
            n_aux: cur.n_aux,
            n_rows: cur.n_rows,
            bbox: cur.bbox,
            removed,
            dirty,
        }
    }

    /// Apply to the materialized base, producing the new generation's
    /// snapshot — working entirely on encoded chunks (no f64 decode).
    pub fn apply(&self, base: &Snapshot) -> Result<Snapshot, StoreError> {
        if bbox_bits(&base.bbox) != bbox_bits(&self.bbox) {
            return Err(StoreError::BaseMismatch("bounding box differs"));
        }
        if base.cell_level != self.cell_level || base.n_aux != self.n_aux {
            return Err(StoreError::BaseMismatch("cell level or aux shape differs"));
        }
        let mut cells: Vec<CellData> = base
            .cells
            .iter()
            .filter(|c| self.removed.binary_search(&c.key).is_err())
            .cloned()
            .collect();
        for dc in &self.dirty {
            let base_cell = base
                .cells
                .binary_search_by_key(&dc.key, |x| x.key)
                .ok()
                .map(|i| &base.cells[i]);
            let mut cols = Vec::with_capacity(dc.cols.len());
            for (c, (enc, bytes)) in dc.cols.iter().enumerate() {
                let chunk = match *enc {
                    ENC_SAME => base_cell
                        .ok_or(StoreError::BaseMismatch("same-column in a new cell"))?
                        .cols[c]
                        .clone(),
                    ENC_XRLE => {
                        let b = base_cell
                            .ok_or(StoreError::BaseMismatch("xor column in a new cell"))?;
                        CellChunk::new(ENC_SHUF, xor_rle_decode(&b.cols[c].bytes, bytes)?)
                    }
                    enc => CellChunk::new(enc, bytes.clone()),
                };
                cols.push(chunk);
            }
            let cell = CellData {
                key: dc.key,
                n: dc.n,
                id_min: dc.id_min,
                id_max: dc.id_max,
                cols,
            };
            match cells.binary_search_by_key(&dc.key, |x| x.key) {
                Ok(i) => cells[i] = cell,
                Err(i) => cells.insert(i, cell),
            }
        }
        let rows: u64 = cells.iter().map(|c| u64::from(c.n)).sum();
        if rows != self.n_rows {
            return Err(StoreError::BadEncoding("delta row count mismatch"));
        }
        Ok(Snapshot {
            bbox: self.bbox,
            cell_level: self.cell_level,
            n_aux: self.n_aux,
            n_rows: self.n_rows,
            cells,
        })
    }

    /// Serialize: magic, payload, trailing crc32(payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u64(&mut p, self.base_step);
        put_u32(&mut p, self.cell_level);
        put_u32(&mut p, self.n_aux);
        put_u64(&mut p, self.n_rows);
        for d in 0..3 {
            put_f64_bits(&mut p, self.bbox.center[d]);
        }
        put_f64_bits(&mut p, self.bbox.half);
        put_u64(&mut p, self.removed.len() as u64);
        for &k in &self.removed {
            put_u64(&mut p, k);
        }
        put_u64(&mut p, self.dirty.len() as u64);
        for dc in &self.dirty {
            put_u64(&mut p, dc.key);
            put_u32(&mut p, dc.n);
            put_u64(&mut p, dc.id_min);
            put_u64(&mut p, dc.id_max);
            for (enc, bytes) in &dc.cols {
                p.push(*enc);
                put_u64(&mut p, bytes.len() as u64);
                p.extend_from_slice(bytes);
            }
        }
        let mut out = Vec::with_capacity(8 + p.len() + 4);
        out.extend_from_slice(&DELTA_MAGIC);
        out.extend_from_slice(&p);
        put_u32(&mut out, crc32(&p));
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Delta, StoreError> {
        if bytes.len() < DELTA_MAGIC.len() + 4 {
            return Err(StoreError::Truncated);
        }
        if bytes[..DELTA_MAGIC.len()] != DELTA_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let payload = &bytes[DELTA_MAGIC.len()..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crc32(payload) != stored {
            return Err(StoreError::BadCrc);
        }
        let mut cur = Cur::new(payload);
        let base_step = cur.u64()?;
        let cell_level = cur.u32()?;
        if cell_level > MAX_LEVEL {
            return Err(StoreError::BadEncoding("cell level beyond Morton depth"));
        }
        let n_aux = cur.u32()?;
        if n_aux > 64 {
            return Err(StoreError::BadEncoding("implausible aux lane count"));
        }
        let n_rows = cur.u64()?;
        let center = [cur.f64_bits()?, cur.f64_bits()?, cur.f64_bits()?];
        let half = cur.f64_bits()?;
        let n_removed = cur.u64()? as usize;
        if n_removed.saturating_mul(8) > payload.len() {
            return Err(StoreError::BadEncoding("removed count exceeds frame"));
        }
        let mut removed = Vec::with_capacity(n_removed);
        let mut prev = None;
        for _ in 0..n_removed {
            let k = cur.u64()?;
            if prev.is_some_and(|p| k <= p) {
                return Err(StoreError::BadEncoding("removed keys out of order"));
            }
            prev = Some(k);
            removed.push(k);
        }
        let n_dirty = cur.u64()? as usize;
        let n_cols = crate::snapshot::FIXED_COLS + n_aux as usize;
        if n_dirty.saturating_mul(28 + n_cols * 9) > payload.len() {
            return Err(StoreError::BadEncoding("dirty count exceeds frame"));
        }
        let mut dirty = Vec::with_capacity(n_dirty);
        let mut prev = None;
        for _ in 0..n_dirty {
            let key = cur.u64()?;
            if prev.is_some_and(|p| key <= p) {
                return Err(StoreError::BadEncoding("dirty cells out of order"));
            }
            prev = Some(key);
            let n = cur.u32()?;
            if n == 0 {
                return Err(StoreError::BadEncoding("empty dirty cell"));
            }
            let id_min = cur.u64()?;
            let id_max = cur.u64()?;
            if id_min > id_max {
                return Err(StoreError::BadEncoding("inverted id range"));
            }
            let mut cols = Vec::with_capacity(n_cols);
            for c in 0..n_cols {
                let enc = cur.u8()?;
                let full = if c == 0 { ENC_IDS } else { ENC_SHUF };
                if enc != full && enc != ENC_SAME && enc != ENC_XRLE {
                    return Err(StoreError::BadEncoding("unexpected delta encoding"));
                }
                if enc == ENC_XRLE && c == 0 {
                    return Err(StoreError::BadEncoding("xor-rle on the id column"));
                }
                let len = cur.u64()? as usize;
                if enc == ENC_SAME && len != 0 {
                    return Err(StoreError::BadEncoding("same-column with payload"));
                }
                cols.push((enc, cur.bytes(len)?.to_vec()));
            }
            dirty.push(DeltaCell {
                key,
                n,
                id_min,
                id_max,
                cols,
            });
        }
        if !cur.done() {
            return Err(StoreError::BadEncoding("trailing bytes in delta"));
        }
        Ok(Delta {
            base_step,
            cell_level,
            n_aux,
            n_rows,
            bbox: BBox { center, half },
            removed,
            dirty,
        })
    }
}

fn bbox_bits(b: &BBox) -> [u64; 4] {
    [
        b.center[0].to_bits(),
        b.center[1].to_bits(),
        b.center[2].to_bits(),
        b.half.to_bits(),
    ]
}
