//! Generation management: a [`GenerationLog`] is the "stable storage"
//! view of a sequence of committed snapshots — the first commit (and
//! every bbox change or chain refresh) is a full frame, everything
//! else an incremental dirty-cell delta against the previous commit.
//! [`materialize`](GenerationLog::materialize) resolves a step back to
//! a full [`Snapshot`] by replaying the delta chain from the nearest
//! full frame; [`SnapshotCache`] bounds how many materialized
//! generations live decoded in RAM at once.

use crate::delta::Delta;
use crate::snapshot::Snapshot;
use crate::{RecordKind, StoreError};
use hot::{BBox, Body};

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Morton level of the cell partition (cells = octree nodes at
    /// this depth; 4 → up to 4096 cells).
    pub cell_level: u32,
    /// How much to inflate a fresh bounding box so subsequent
    /// generations keep fitting (and can be committed as deltas).
    pub pad_factor: f64,
    /// Force a full frame every this many commits, bounding delta
    /// chain length and hence materialization cost.
    pub full_every: u32,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            cell_level: 4,
            pad_factor: 2.0,
            full_every: 8,
        }
    }
}

/// One committed generation's bytes: a full snapshot frame or a delta
/// frame chained to the previous commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenRecord {
    Full(Vec<u8>),
    Delta { base_step: u64, bytes: Vec<u8> },
}

impl GenRecord {
    pub fn bytes(&self) -> &[u8] {
        match self {
            GenRecord::Full(b) => b,
            GenRecord::Delta { bytes, .. } => bytes,
        }
    }
}

/// Append-only log of committed generations with full/delta chaining.
#[derive(Debug, Clone)]
pub struct GenerationLog {
    cfg: StoreConfig,
    n_aux: u32,
    gens: Vec<(u64, GenRecord)>,
    /// Most recent generation kept encoded for diffing the next commit.
    last: Option<(u64, Snapshot)>,
    chain_len: u32,
    /// What the same commits would have cost as full frames.
    pub full_bytes: u64,
    /// What they actually cost.
    pub commit_bytes: u64,
    /// Dirty cells shipped in delta commits.
    pub cells_dirty: u64,
    /// Total cells across all committed generations.
    pub cells_total: u64,
}

impl GenerationLog {
    pub fn new(cfg: StoreConfig, n_aux: u32) -> GenerationLog {
        GenerationLog {
            cfg,
            n_aux,
            gens: Vec::new(),
            last: None,
            chain_len: 0,
            full_bytes: 0,
            commit_bytes: 0,
            cells_dirty: 0,
            cells_total: 0,
        }
    }

    pub fn generations(&self) -> usize {
        self.gens.len()
    }

    pub fn contains(&self, step: u64) -> bool {
        self.gens.binary_search_by_key(&step, |(s, _)| *s).is_ok()
    }

    pub fn steps(&self) -> impl Iterator<Item = u64> + '_ {
        self.gens.iter().map(|(s, _)| *s)
    }

    pub fn record(&self, step: u64) -> Option<&GenRecord> {
        self.gens
            .binary_search_by_key(&step, |(s, _)| *s)
            .ok()
            .map(|i| &self.gens[i].1)
    }

    /// Commit a generation. Steps must be strictly increasing. Returns
    /// the committed record bytes (full or delta frame).
    pub fn commit(&mut self, step: u64, bodies: &[Body], aux: &[f64]) -> &[u8] {
        assert!(
            self.gens.last().is_none_or(|(s, _)| *s < step),
            "commits must advance the step"
        );
        let reuse = match &self.last {
            Some((_, prev)) if self.chain_len + 1 < self.cfg.full_every => {
                bodies.iter().all(|b| fits(&prev.bbox, b.pos))
            }
            _ => false,
        };
        let bbox = if reuse {
            self.last.as_ref().unwrap().1.bbox
        } else {
            padded_bbox(bodies, self.cfg.pad_factor)
        };
        let cur = Snapshot::build(bodies, aux, self.n_aux, bbox, self.cfg.cell_level);
        let full = cur.to_bytes();
        self.full_bytes += full.len() as u64;
        self.cells_total += cur.cells.len() as u64;
        let record = if reuse {
            let (prev_step, prev) = self.last.as_ref().unwrap();
            let delta = Delta::build(prev, &cur, *prev_step);
            let bytes = delta.to_bytes();
            // A delta that lost to the full frame (heavy churn) is
            // committed as a full frame instead, resetting the chain.
            if bytes.len() < full.len() {
                self.cells_dirty += delta.dirty.len() as u64;
                Some(GenRecord::Delta {
                    base_step: *prev_step,
                    bytes,
                })
            } else {
                None
            }
        } else {
            None
        };
        let record = record.unwrap_or(GenRecord::Full(full));
        self.chain_len = match record {
            GenRecord::Full(_) => 0,
            GenRecord::Delta { .. } => self.chain_len + 1,
        };
        self.commit_bytes += record.bytes().len() as u64;
        self.last = Some((step, cur));
        self.gens.push((step, record));
        self.gens.last().unwrap().1.bytes()
    }

    /// Materialize the snapshot committed at `step` by decoding the
    /// nearest full frame at or before it and replaying deltas.
    pub fn materialize(&self, step: u64) -> Result<Snapshot, StoreError> {
        let idx = self
            .gens
            .binary_search_by_key(&step, |(s, _)| *s)
            .map_err(|_| StoreError::BaseMismatch("step was never committed"))?;
        let mut start = idx;
        while let GenRecord::Delta { .. } = self.gens[start].1 {
            if start == 0 {
                return Err(StoreError::BaseMismatch("delta chain has no full base"));
            }
            start -= 1;
        }
        let mut snap = match &self.gens[start].1 {
            GenRecord::Full(bytes) => Snapshot::from_bytes(bytes)?,
            GenRecord::Delta { .. } => unreachable!(),
        };
        let mut at = self.gens[start].0;
        for i in start + 1..=idx {
            match &self.gens[i].1 {
                GenRecord::Delta { base_step, bytes } => {
                    if *base_step != at {
                        return Err(StoreError::BaseMismatch("broken delta chain"));
                    }
                    let delta = Delta::from_bytes(bytes)?;
                    if delta.base_step != at {
                        return Err(StoreError::BaseMismatch("delta frame base differs"));
                    }
                    snap = delta.apply(&snap)?;
                }
                GenRecord::Full(_) => {
                    return Err(StoreError::BaseMismatch("full frame inside a chain"))
                }
            }
            at = self.gens[i].0;
        }
        Ok(snap)
    }
}

/// Materialize `step` from raw committed records `(step, bytes)` in
/// ascending step order — the record kinds are sniffed from the bytes.
/// This is the restore-side twin of [`GenerationLog::materialize`] for
/// consumers that only hold the committed byte strings.
pub fn materialize_records(records: &[(u64, Vec<u8>)], step: u64) -> Result<Snapshot, StoreError> {
    let idx = records
        .iter()
        .position(|(s, _)| *s == step)
        .ok_or(StoreError::BaseMismatch("step was never committed"))?;
    let mut start = idx;
    while !matches!(crate::record_kind(&records[start].1)?, RecordKind::Full) {
        if start == 0 {
            return Err(StoreError::BaseMismatch("delta chain has no full base"));
        }
        start -= 1;
    }
    let mut snap = Snapshot::from_bytes(&records[start].1)?;
    let mut at = records[start].0;
    for (s, bytes) in &records[start + 1..=idx] {
        let delta = Delta::from_bytes(bytes)?;
        if delta.base_step != at {
            return Err(StoreError::BaseMismatch("broken delta chain"));
        }
        snap = delta.apply(&snap)?;
        at = *s;
    }
    Ok(snap)
}

fn fits(bbox: &BBox, p: [f64; 3]) -> bool {
    (0..3).all(|d| (p[d] - bbox.center[d]).abs() < bbox.half && p[d].is_finite())
}

fn padded_bbox(bodies: &[Body], pad: f64) -> BBox {
    if bodies.is_empty() {
        return BBox {
            center: [0.0; 3],
            half: 1.0,
        };
    }
    let b = BBox::enclosing(bodies.iter().map(|b| b.pos));
    BBox {
        center: b.center,
        half: b.half * pad,
    }
}

/// Bounded LRU of materialized generations: the RAM ceiling for
/// time-travel reads. `peak` pins the ceiling in tests.
#[derive(Debug)]
pub struct SnapshotCache {
    cap: usize,
    /// Least-recently-used first.
    entries: Vec<(u64, Snapshot)>,
    pub peak: usize,
    pub hits: u64,
    pub misses: u64,
}

impl SnapshotCache {
    pub fn new(cap: usize) -> SnapshotCache {
        SnapshotCache {
            cap: cap.max(1),
            entries: Vec::new(),
            peak: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up `step`, materializing (and caching) it on a miss.
    pub fn get_or_try_insert<E>(
        &mut self,
        step: u64,
        materialize: impl FnOnce() -> Result<Snapshot, E>,
    ) -> Result<&Snapshot, E> {
        if let Some(i) = self.entries.iter().position(|(s, _)| *s == step) {
            self.hits += 1;
            let e = self.entries.remove(i);
            self.entries.push(e);
        } else {
            self.misses += 1;
            let snap = materialize()?;
            if self.entries.len() == self.cap {
                self.entries.remove(0);
            }
            self.entries.push((step, snap));
            self.peak = self.peak.max(self.entries.len());
        }
        Ok(&self.entries.last().unwrap().1)
    }
}
