//! Exhaustive corruption sweep over the framed checkpoint format: every
//! single-byte (indeed, single-bit) flip anywhere in a framed snapshot —
//! magic, payload, length prefixes, CRC trailer — must surface as a
//! typed decode error, never as silently different physics. This is the
//! property §2.1's run-through-failures story leans on: a checkpoint
//! that survived a soft error is only trustworthy if the format cannot
//! lie.

use ckpt::{load, load_shard, save, save_shard, CkptError, ShardHeader};

type State = ((u64, f64), Vec<[f64; 3]>);

fn sample_state() -> State {
    let bodies: Vec<[f64; 3]> = (0..17)
        .map(|i| {
            let x = i as f64;
            [x * 0.25 - 2.0, -x * 1.5, 1.0 / (1.0 + x)]
        })
        .collect();
    ((0xDEAD_BEEF_u64, 0.015625), bodies)
}

fn sample_shard() -> Vec<u8> {
    let ((_, time), bodies) = sample_state();
    save_shard(
        &ShardHeader {
            rank: 5,
            of_ranks: 16,
            step: 12,
            time,
        },
        &bodies,
    )
}

#[test]
fn every_single_byte_flip_is_detected() {
    let state = sample_state();
    let bytes = save(&state);
    assert!(load::<State>(&bytes).is_ok(), "pristine frame must load");
    for i in 0..bytes.len() {
        let mut c = bytes.clone();
        c[i] ^= 0xFF;
        assert!(
            load::<State>(&c).is_err(),
            "byte {i}/{} flipped 0xFF but the frame still decoded",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let state = sample_state();
    let bytes = save(&state);
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut c = bytes.clone();
            c[i] ^= 1 << bit;
            assert!(
                load::<State>(&c).is_err(),
                "bit {bit} of byte {i} flipped but the frame still decoded"
            );
        }
    }
}

#[test]
fn every_truncation_is_detected() {
    let bytes = save(&sample_state());
    for len in 0..bytes.len() {
        assert!(
            load::<State>(&bytes[..len]).is_err(),
            "truncation to {len} bytes decoded"
        );
    }
}

#[test]
fn error_kinds_match_the_damaged_region() {
    let bytes = save(&sample_state());
    // Magic damage -> BadMagic.
    let mut c = bytes.clone();
    c[0] ^= 0xFF;
    assert_eq!(load::<State>(&c), Err(CkptError::BadMagic));
    // Payload damage -> CRC mismatch.
    let mut c = bytes.clone();
    c[ckpt::MAGIC.len() + 3] ^= 0x01;
    assert!(matches!(load::<State>(&c), Err(CkptError::BadCrc { .. })));
    // Trailer damage -> CRC mismatch.
    let mut c = bytes.clone();
    let last = c.len() - 1;
    c[last] ^= 0x01;
    assert!(matches!(load::<State>(&c), Err(CkptError::BadCrc { .. })));
}

#[test]
fn every_single_bit_flip_in_a_shard_is_detected() {
    // Per-rank shards carry the same guarantee as whole-world frames:
    // any bit flip — in the rank/step header as much as the payload —
    // surfaces as a typed error, so degraded recovery falls back to the
    // previous complete generation instead of restoring rot.
    let bytes = sample_shard();
    assert!(
        load_shard::<Vec<[f64; 3]>>(&bytes).is_ok(),
        "pristine shard must load"
    );
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut c = bytes.clone();
            c[i] ^= 1 << bit;
            assert!(
                load_shard::<Vec<[f64; 3]>>(&c).is_err(),
                "bit {bit} of shard byte {i} flipped but the frame still decoded"
            );
        }
    }
}

#[test]
fn every_shard_truncation_is_detected() {
    let bytes = sample_shard();
    for len in 0..bytes.len() {
        assert!(
            load_shard::<Vec<[f64; 3]>>(&bytes[..len]).is_err(),
            "shard truncation to {len} bytes decoded"
        );
    }
}

#[test]
fn appended_bytes_are_detected() {
    // A torn write that *grew* the file (e.g. stale tail after a short
    // rewrite) must fail too: the CRC trailer is taken from the end, so
    // extra bytes corrupt the payload view.
    let mut bytes = save(&sample_state());
    bytes.push(0u8);
    assert!(load::<State>(&bytes).is_err(), "grown frame decoded");
}
