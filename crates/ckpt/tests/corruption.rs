//! Exhaustive corruption sweep over the framed checkpoint format: every
//! single-byte (indeed, single-bit) flip anywhere in a framed snapshot —
//! magic, payload, length prefixes, CRC trailer — must surface as a
//! typed decode error, never as silently different physics. This is the
//! property §2.1's run-through-failures story leans on: a checkpoint
//! that survived a soft error is only trustworthy if the format cannot
//! lie.

use ckpt::{load, load_shard, save, save_shard, validate_shard_headers, CkptError, ShardHeader};

type State = ((u64, f64), Vec<[f64; 3]>);

fn sample_state() -> State {
    let bodies: Vec<[f64; 3]> = (0..17)
        .map(|i| {
            let x = i as f64;
            [x * 0.25 - 2.0, -x * 1.5, 1.0 / (1.0 + x)]
        })
        .collect();
    ((0xDEAD_BEEF_u64, 0.015625), bodies)
}

fn sample_shard() -> Vec<u8> {
    let ((_, time), bodies) = sample_state();
    save_shard(
        &ShardHeader {
            rank: 5,
            of_ranks: 16,
            step: 12,
            time,
        },
        &bodies,
    )
}

#[test]
fn every_single_byte_flip_is_detected() {
    let state = sample_state();
    let bytes = save(&state);
    assert!(load::<State>(&bytes).is_ok(), "pristine frame must load");
    for i in 0..bytes.len() {
        let mut c = bytes.clone();
        c[i] ^= 0xFF;
        assert!(
            load::<State>(&c).is_err(),
            "byte {i}/{} flipped 0xFF but the frame still decoded",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let state = sample_state();
    let bytes = save(&state);
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut c = bytes.clone();
            c[i] ^= 1 << bit;
            assert!(
                load::<State>(&c).is_err(),
                "bit {bit} of byte {i} flipped but the frame still decoded"
            );
        }
    }
}

#[test]
fn every_truncation_is_detected() {
    let bytes = save(&sample_state());
    for len in 0..bytes.len() {
        assert!(
            load::<State>(&bytes[..len]).is_err(),
            "truncation to {len} bytes decoded"
        );
    }
}

#[test]
fn error_kinds_match_the_damaged_region() {
    let bytes = save(&sample_state());
    // Magic damage -> BadMagic.
    let mut c = bytes.clone();
    c[0] ^= 0xFF;
    assert_eq!(load::<State>(&c), Err(CkptError::BadMagic));
    // Payload damage -> CRC mismatch.
    let mut c = bytes.clone();
    c[ckpt::MAGIC.len() + 3] ^= 0x01;
    assert!(matches!(load::<State>(&c), Err(CkptError::BadCrc { .. })));
    // Trailer damage -> CRC mismatch.
    let mut c = bytes.clone();
    let last = c.len() - 1;
    c[last] ^= 0x01;
    assert!(matches!(load::<State>(&c), Err(CkptError::BadCrc { .. })));
}

#[test]
fn every_single_bit_flip_in_a_shard_is_detected() {
    // Per-rank shards carry the same guarantee as whole-world frames:
    // any bit flip — in the rank/step header as much as the payload —
    // surfaces as a typed error, so degraded recovery falls back to the
    // previous complete generation instead of restoring rot.
    let bytes = sample_shard();
    assert!(
        load_shard::<Vec<[f64; 3]>>(&bytes).is_ok(),
        "pristine shard must load"
    );
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut c = bytes.clone();
            c[i] ^= 1 << bit;
            assert!(
                load_shard::<Vec<[f64; 3]>>(&c).is_err(),
                "bit {bit} of shard byte {i} flipped but the frame still decoded"
            );
        }
    }
}

#[test]
fn every_shard_truncation_is_detected() {
    let bytes = sample_shard();
    for len in 0..bytes.len() {
        assert!(
            load_shard::<Vec<[f64; 3]>>(&bytes[..len]).is_err(),
            "shard truncation to {len} bytes decoded"
        );
    }
}

#[test]
fn stitched_shard_sets_from_different_worlds_are_rejected() {
    // Each shard below is individually pristine — valid magic, header
    // and CRC — yet the *set* can still be a Frankenstein assembled from
    // different runs. The cross-validator is what stops a recovery from
    // mixing states that never coexisted.
    let hdr = |rank: u32, of_ranks: u32, step: u64, time: f64| ShardHeader {
        rank,
        of_ranks,
        step,
        time,
    };
    let good = [
        hdr(0, 4, 8, 0.25),
        hdr(1, 4, 8, 0.25),
        hdr(2, 4, 8, 0.25),
        hdr(3, 4, 8, 0.25),
    ];
    assert_eq!(validate_shard_headers(&good, 4), Ok(()));
    // Order within the set is irrelevant; identity is what matters.
    let mut shuffled = good;
    shuffled.swap(0, 3);
    shuffled.swap(1, 2);
    assert_eq!(validate_shard_headers(&shuffled, 4), Ok(()));

    let reject = |hs: &[ShardHeader], n: usize, why: &str| {
        assert!(
            matches!(
                validate_shard_headers(hs, n),
                Err(CkptError::ShardSetMismatch(_))
            ),
            "{why}: accepted {hs:?}"
        );
    };
    // Too few / too many fragments (torn commit, duplicated log entry).
    reject(&good[..3], 4, "missing fragment");
    reject(&good, 3, "extra fragment");
    reject(&[], 0, "empty set");
    // A shard of the same rank+step from a *larger* world.
    let mut c = good;
    c[2] = hdr(2, 8, 8, 0.25);
    reject(&c, 4, "of_ranks disagrees");
    // A shard of a different generation (older commit of the same rank).
    let mut c = good;
    c[1] = hdr(1, 4, 4, 0.125);
    reject(&c, 4, "step disagrees");
    // Same step, different virtual commit time: a different history.
    let mut c = good;
    c[3] = hdr(3, 4, 8, 0.25 + 1e-12);
    reject(&c, 4, "commit time disagrees");
    // Bit-equality, not numeric equality: -0.0 == 0.0 numerically but
    // the commit clocks cannot have produced both.
    let mut c = [hdr(0, 2, 0, 0.0), hdr(1, 2, 0, -0.0)];
    reject(&c, 2, "commit time sign bit disagrees");
    c[1].time = 0.0;
    assert_eq!(validate_shard_headers(&c, 2), Ok(()));
    // The same rank twice (one rank's shard logged into another's slot).
    let dup = [good[0], good[1], good[1], good[3]];
    reject(&dup, 4, "duplicate rank");
}

#[test]
fn appended_bytes_are_detected() {
    // A torn write that *grew* the file (e.g. stale tail after a short
    // rewrite) must fail too: the CRC trailer is taken from the end, so
    // extra bytes corrupt the payload view.
    let mut bytes = save(&sample_state());
    bytes.push(0u8);
    assert!(load::<State>(&bytes).is_err(), "grown frame decoded");
}
