//! Deterministic binary checkpoints for the simulated integrators.
//!
//! The checkpoint/restart story of §2.1 — run production science *through*
//! hardware failures — needs integrator state that can round-trip
//! bit-for-bit: a restored SPH run must continue exactly where the lost
//! one left off, or restart-equivalence tests cannot distinguish "recovered"
//! from "silently diverged". `f64` therefore travels as its raw IEEE-754
//! bits (little-endian), never through decimal formatting.
//!
//! The format is deliberately tiny and dependency-free:
//!
//! ```text
//! magic "SSCKPT01" | payload bytes | crc32(payload) as u32 LE
//! ```
//!
//! with every value encoded by its [`Pack`] implementation (fixed-width
//! little-endian scalars, `u64` length-prefixed sequences). A truncated or
//! bit-flipped file fails [`load`] with a typed [`CkptError`] instead of
//! yielding corrupt physics.

use std::fmt;

/// File magic: "SSCKPT" + 2-digit format version.
pub const MAGIC: [u8; 8] = *b"SSCKPT01";

/// Why a checkpoint failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Fewer bytes than the header/payload requires.
    Truncated,
    /// Magic/version bytes do not match [`MAGIC`].
    BadMagic,
    /// Payload checksum mismatch (bit rot, torn write).
    BadCrc { stored: u32, computed: u32 },
    /// A decoded discriminant or flag byte is out of range.
    BadEncoding(&'static str),
    /// Payload decoded cleanly but bytes were left over.
    TrailingBytes(usize),
    /// A set of shard headers does not form one coherent generation
    /// (see [`validate_shard_headers`]).
    ShardSetMismatch(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CkptError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "checkpoint crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            CkptError::BadEncoding(what) => write!(f, "invalid encoding for {what}"),
            CkptError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            CkptError::ShardSetMismatch(what) => {
                write!(f, "shard set is not one coherent generation: {what}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

/// CRC-32 (IEEE 802.3, reflected), table-driven; the table is built at
/// compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE polynomial, as used by Ethernet/zip).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Cursor over a checkpoint payload being decoded.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// A value with a deterministic binary encoding.
pub trait Pack {
    fn pack(&self, out: &mut Vec<u8>);
    fn unpack(r: &mut Reader) -> Result<Self, CkptError>
    where
        Self: Sized;
}

macro_rules! scalar_pack {
    ($($t:ty),*) => {$(
        impl Pack for $t {
            fn pack(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
                let b = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
        }
    )*};
}

scalar_pack!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Pack for f64 {
    fn pack(&self, out: &mut Vec<u8>) {
        // Raw bits: NaN payloads, signed zeros and subnormals all survive,
        // which is what makes restart equivalence *bit-for-bit*.
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok(f64::from_bits(u64::unpack(r)?))
    }
}

impl Pack for f32 {
    fn pack(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok(f32::from_bits(u32::unpack(r)?))
    }
}

impl Pack for usize {
    /// Always 8 bytes on the wire, independent of platform width.
    fn pack(&self, out: &mut Vec<u8>) {
        (*self as u64).pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        let v = u64::unpack(r)?;
        usize::try_from(v).map_err(|_| CkptError::BadEncoding("usize"))
    }
}

impl Pack for bool {
    fn pack(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        match u8::unpack(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CkptError::BadEncoding("bool")),
        }
    }
}

impl<T: Pack, const N: usize> Pack for [T; N] {
    fn pack(&self, out: &mut Vec<u8>) {
        for v in self {
            v.pack(out);
        }
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        let mut tmp = Vec::with_capacity(N);
        for _ in 0..N {
            tmp.push(T::unpack(r)?);
        }
        tmp.try_into()
            .map_err(|_| CkptError::BadEncoding("fixed array"))
    }
}

impl<T: Pack> Pack for Vec<T> {
    fn pack(&self, out: &mut Vec<u8>) {
        self.len().pack(out);
        for v in self {
            v.pack(out);
        }
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        let n = usize::unpack(r)?;
        // Sanity bound: no element is smaller than a byte, so a length
        // beyond the remaining bytes is corrupt, not just big.
        if n > r.remaining() {
            return Err(CkptError::Truncated);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::unpack(r)?);
        }
        Ok(v)
    }
}

impl<T: Pack> Pack for Option<T> {
    fn pack(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.pack(out);
            }
        }
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        match u8::unpack(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::unpack(r)?)),
            _ => Err(CkptError::BadEncoding("Option")),
        }
    }
}

impl Pack for String {
    fn pack(&self, out: &mut Vec<u8>) {
        self.len().pack(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        let n = usize::unpack(r)?;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CkptError::BadEncoding("String"))
    }
}

impl<A: Pack, B: Pack> Pack for (A, B) {
    fn pack(&self, out: &mut Vec<u8>) {
        self.0.pack(out);
        self.1.pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok((A::unpack(r)?, B::unpack(r)?))
    }
}

impl<A: Pack, B: Pack, C: Pack> Pack for (A, B, C) {
    fn pack(&self, out: &mut Vec<u8>) {
        self.0.pack(out);
        self.1.pack(out);
        self.2.pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok((A::unpack(r)?, B::unpack(r)?, C::unpack(r)?))
    }
}

/// Which fragment of which commit a per-rank checkpoint shard holds.
///
/// A *shard* is one rank's independently-framed fragment of a global
/// checkpoint generation: `of_ranks` shards with the same `step` form one
/// complete commit. Sharding is what makes degraded recovery O(1 rank)
/// instead of O(world) — restoring a single dead rank re-reads one shard,
/// while the survivors roll back in place — and the per-shard crc frame
/// means one rotten fragment invalidates only itself, not the whole
/// generation's bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardHeader {
    /// Which rank committed this fragment.
    pub rank: u32,
    /// World size of the committing run.
    pub of_ranks: u32,
    /// Step the generation was committed at.
    pub step: u64,
    /// Virtual time of the commit.
    pub time: f64,
}

impl Pack for ShardHeader {
    fn pack(&self, out: &mut Vec<u8>) {
        self.rank.pack(out);
        self.of_ranks.pack(out);
        self.step.pack(out);
        self.time.pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        let h = ShardHeader {
            rank: u32::unpack(r)?,
            of_ranks: u32::unpack(r)?,
            step: u64::unpack(r)?,
            time: f64::unpack(r)?,
        };
        if h.of_ranks == 0 || h.rank >= h.of_ranks {
            return Err(CkptError::BadEncoding("shard rank out of range"));
        }
        Ok(h)
    }
}

/// Cross-validate a full shard set as ONE coherent generation.
///
/// Individually valid shards can still be stitched from different worlds
/// — a rank 2 shard of step 4 from an 8-rank run next to a rank 2 shard
/// of step 4 from a 4-rank run, or two commits whose virtual times
/// disagree. Assembling such a set silently mixes states from different
/// histories, so both commit promotion and restore must reject it and
/// fall back a generation. The set is coherent iff:
///
/// * there are exactly `of_ranks` headers and every header agrees on
///   `of_ranks` equal to that count,
/// * every header carries the same `step`,
/// * every header carries the same `time` *bits* (commit time is
///   deterministic virtual time; any drift means different worlds),
/// * the ranks are exactly the set `0..of_ranks`, each once (order
///   within the slice is not required).
pub fn validate_shard_headers(headers: &[ShardHeader], of_ranks: usize) -> Result<(), CkptError> {
    if headers.len() != of_ranks || of_ranks == 0 {
        return Err(CkptError::ShardSetMismatch("shard count != of_ranks"));
    }
    let first = &headers[0];
    let mut seen = vec![false; of_ranks];
    for h in headers {
        if h.of_ranks != of_ranks as u32 {
            return Err(CkptError::ShardSetMismatch("of_ranks disagrees"));
        }
        if h.step != first.step {
            return Err(CkptError::ShardSetMismatch("step disagrees"));
        }
        if h.time.to_bits() != first.time.to_bits() {
            return Err(CkptError::ShardSetMismatch("commit time disagrees"));
        }
        let r = h.rank as usize;
        if r >= of_ranks || seen[r] {
            return Err(CkptError::ShardSetMismatch("rank set is not 0..of_ranks"));
        }
        seen[r] = true;
    }
    Ok(())
}

/// Frame one rank's checkpoint fragment: magic, header + payload, crc32.
pub fn save_shard<T: Pack>(header: &ShardHeader, payload: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    header.pack(&mut out);
    payload.pack(&mut out);
    let crc = crc32(&out[MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a shard produced by [`save_shard`]. Corruption anywhere in the
/// frame — header or payload — fails with a typed error so recovery can
/// fall back to an older complete generation instead of crashing.
pub fn load_shard<T: Pack>(bytes: &[u8]) -> Result<(ShardHeader, T), CkptError> {
    load(bytes)
}

/// Encode `value` as a framed checkpoint: magic, payload, payload crc32.
pub fn save<T: Pack>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    value.pack(&mut out);
    let crc = crc32(&out[MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a framed checkpoint produced by [`save`].
pub fn load<T: Pack>(bytes: &[u8]) -> Result<T, CkptError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(CkptError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let payload = &bytes[MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(CkptError::BadCrc { stored, computed });
    }
    let mut r = Reader::new(payload);
    let v = T::unpack(&mut r)?;
    if r.remaining() != 0 {
        return Err(CkptError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Pack + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = save(&v);
        let back: T = load(&bytes).expect("roundtrip");
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-123i64);
        roundtrip(usize::MAX as u64);
        roundtrip(true);
        roundtrip(3.141592653589793f64);
        roundtrip(1.0e-300f64);
    }

    #[test]
    fn f64_is_bit_exact() {
        for v in [
            0.0f64,
            -0.0,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            1.0 + f64::EPSILON,
        ] {
            let bytes = save(&v);
            let back: f64 = load(&bytes).expect("roundtrip");
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        // NaN payload bits survive too.
        let nan = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let back: f64 = load(&save(&nan)).expect("roundtrip");
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(vec![1.0f64, -2.5, 3.75]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some([1.0f64, 2.0, 3.0]));
        roundtrip(None::<u64>);
        roundtrip(("label".to_string(), 42u64, vec![true, false]));
        roundtrip(vec![(1u64, 2.0f64), (3, 4.0)]);
    }

    #[test]
    fn crc_detects_bit_flips() {
        let bytes = save(&vec![1.0f64; 16]);
        for flip in [MAGIC.len(), MAGIC.len() + 7, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x10;
            match load::<Vec<f64>>(&bad) {
                Err(CkptError::BadCrc { .. }) => {}
                other => panic!("flip at {flip}: expected BadCrc, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_magic_and_truncation_rejected() {
        let bytes = save(&7u64);
        assert_eq!(load::<u64>(&bytes[..4]), Err(CkptError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(load::<u64>(&bad), Err(CkptError::BadMagic));
        // Payload shorter than the type needs.
        let short = save(&1u32);
        assert_eq!(load::<u64>(&short), Err(CkptError::Truncated));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let long = save(&(1u64, 2u64));
        assert_eq!(load::<u64>(&long), Err(CkptError::TrailingBytes(8)));
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_oom() {
        // A corrupt length prefix must fail cleanly before allocation.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        (u64::MAX).pack(&mut out);
        let crc = crc32(&out[MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(load::<Vec<f64>>(&out), Err(CkptError::Truncated));
    }

    #[test]
    fn shard_roundtrip_and_header_validation() {
        let h = ShardHeader {
            rank: 3,
            of_ranks: 16,
            step: 40,
            time: 12.5,
        };
        let payload = vec![[1.0f64, -2.0, 3.0]; 7];
        let bytes = save_shard(&h, &payload);
        let (back_h, back_p): (ShardHeader, Vec<[f64; 3]>) = load_shard(&bytes).expect("roundtrip");
        assert_eq!(back_h, h);
        assert_eq!(back_p, payload);
        // A rank at-or-beyond the world size is a corrupt header even if
        // the crc (recomputed here) is formally valid.
        let bad = save_shard(
            &ShardHeader {
                rank: 16,
                of_ranks: 16,
                ..h
            },
            &payload,
        );
        assert_eq!(
            load_shard::<Vec<[f64; 3]>>(&bad),
            Err(CkptError::BadEncoding("shard rank out of range"))
        );
    }

    #[test]
    fn crc32_reference_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = vec![[1.0f64, 2.0, 3.0]; 5];
        assert_eq!(save(&v), save(&v.clone()));
    }
}
