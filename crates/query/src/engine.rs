//! The distributed query engine: simulation-as-a-service over `msg`.
//!
//! Every rank runs the *same* replicated KDK simulation (tree build and
//! force walk are deterministic and thread-count independent, so the
//! per-rank universes stay bit-identical without any state exchange) and
//! owns a contiguous stripe of the Morton-sorted body array. Queries are
//! the wire traffic: each simulation tick batches the arrivals that fell
//! into its window and runs a three-phase protocol with a *fixed message
//! count* — one (possibly empty) payload per ordered rank pair per phase
//! — so the message structure is schedule-invariant and the simcheck
//! structure oracle can pin it.
//!
//! * **Route.** The origin sends each query to its responders. Point
//!   lookups go to the single rank that owned the id in the *previous*
//!   ownership epoch (the map a real client-facing frontend would have
//!   cached); region / kNN / time-travel queries go to every rank.
//! * **Forward.** Bodies drift, the Morton re-sort moves them across
//!   stripe boundaries, so a point query can land on a stale owner
//!   mid-migration. The stale owner forwards it to the current owner
//!   (counted as `query.forwarded`) instead of dropping it — the
//!   regression the tests pin.
//! * **Reply + merge.** Responders answer against the shared
//!   [`QueryIndex`] restricted to their owned span (or their committed
//!   checkpoint shard for time-travel) and send partial replies home,
//!   where they are merged under the total orders of [`crate::wire`] —
//!   the merged answer is bit-identical to a serial scan of the whole
//!   universe, which the brute-force oracle tests quantify over.
//!
//! Counters (`query.issued/answered/forwarded/late/not_found`) are pure
//! functions of the seed and config, never of the delivery schedule;
//! latency lands only in the `query.latency_s` histogram, which the
//! schedule digest deliberately excludes.

use crate::fleet::{self, FleetConfig};
use crate::index::QueryIndex;
use crate::past;
use crate::wire::{
    forward_tag, hit_order, reply_tag, route_tag, Answer, Hit, Query, QueryKind, Reply, ReplyBatch,
};
use ckpt::ShardHeader;
use hot::integrate::Simulation;
use hot::tree::Body;
use hot::GravityConfig;
use msg::comm::Comm;
use std::collections::HashMap;
use std::ops::Range;
use store::{GenerationLog, SnapshotCache, StoreConfig};

/// Engine knobs. `steps` simulation ticks are run; arrivals are batched
/// into deterministic windows of `tick_window_s` (the last tick drains
/// everything left, so every issued query is answered).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    pub gravity: GravityConfig,
    pub dt: f64,
    pub steps: u64,
    /// Commit a checkpoint generation every this many ticks (tick 0
    /// always commits, so time-travel queries always have a target).
    pub checkpoint_every: u64,
    /// Virtual-time width of one tick's arrival window.
    pub tick_window_s: f64,
    /// How many *materialized* generations may live decoded in RAM at
    /// once. Committed history itself lives in the snapshot store
    /// (full + dirty-cell delta frames); this only bounds the cache in
    /// front of it.
    pub history_cache: usize,
    pub fleet: FleetConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            gravity: GravityConfig::default(),
            dt: 0.01,
            steps: 4,
            checkpoint_every: 2,
            tick_window_s: 4.0e-5,
            history_cache: 2,
            fleet: FleetConfig::default(),
        }
    }
}

/// Per-rank protocol accounting. Every field is deterministic in
/// `(ics, config)` — schedule changes may reorder deliveries but never
/// change these totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries this rank's clients issued.
    pub issued: u64,
    /// Merged answers delivered back to this rank's clients.
    pub answered: u64,
    /// Point queries this rank re-routed because the cached owner map
    /// was one epoch stale.
    pub forwarded: u64,
    /// Answers delivered later than the client timeout.
    pub late: u64,
    /// Final answers that were `Missing` (unknown id).
    pub not_found: u64,
    /// Partial replies for unknown or already-resolved queries — any
    /// nonzero value is a protocol bug (at-most-once violated).
    pub dup_replies: u64,
    /// Queries that reached merge with fewer partials than expected —
    /// any nonzero value is a protocol bug (at-least-once violated).
    pub unanswered: u64,
    /// Time-travel queries answered with the typed
    /// [`Answer::NotCommitted`] miss (generation never committed).
    pub time_travel_miss: u64,
}

/// One merged answer, with everything a correctness oracle needs to
/// recompute it from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedReply {
    pub qid: u64,
    /// Tick the query was batched into (live queries were answered
    /// against the replicated state after `tick` physics steps).
    pub tick: u64,
    /// `Some(step)` for time-travel queries: the checkpoint generation
    /// answered from.
    pub at_step: Option<u64>,
    pub kind: QueryKind,
    pub answer: Answer,
    pub at_s: f64,
    pub done_s: f64,
}

/// What one rank's engine run produced.
pub struct EngineOutput {
    pub stats: QueryStats,
    /// Merged answers for this rank's own clients, in issue order.
    pub replies: Vec<RecordedReply>,
    /// `(step, shard bytes)` for every checkpoint generation this rank
    /// committed — a crc-framed [`ShardHeader`] wrapping a snapshot
    /// store record (full frame, or dirty-cell delta against the
    /// previous commit). The on-disk form time-travel queries are
    /// served from.
    pub commits: Vec<(u64, Vec<u8>)>,
    /// Most materialized generations ever decoded in RAM at once —
    /// the memory-ceiling number the long-run test pins against
    /// [`EngineConfig::history_cache`].
    pub history_decoded_peak: usize,
    /// Generations committed to the store over the run.
    pub history_generations: usize,
    /// Bytes actually committed to the store (deltas where possible).
    pub store_commit_bytes: u64,
    /// What the same commits would have cost as full snapshots.
    pub store_full_bytes: u64,
    /// Virtual time when the run finished.
    pub end_s: f64,
}

/// This rank's contiguous slice of the Morton-sorted body array —
/// ownership *is* a Morton key range, so these spans are what turn a
/// tree walk into a Morton-range cell walk.
pub fn stripe(n: usize, size: usize, r: usize) -> Range<usize> {
    let base = n / size;
    let rem = n % size;
    let start = r * base + r.min(rem);
    start..start + base + usize::from(r < rem)
}

/// `(body id, owner rank)` sorted by id, for one ownership epoch.
fn owner_map(bodies: &[Body], size: usize) -> Vec<(u64, u32)> {
    let n = bodies.len();
    let mut m = Vec::with_capacity(n);
    for r in 0..size {
        for b in &bodies[stripe(n, size, r)] {
            m.push((b.id, r as u32));
        }
    }
    m.sort_unstable();
    m
}

fn lookup(map: &[(u64, u32)], id: u64) -> Option<usize> {
    map.binary_search_by_key(&id, |e| e.0)
        .ok()
        .map(|i| map[i].1 as usize)
}

/// Where a point query for `id` goes under `map`; ids nobody owns are
/// deterministically assigned a fallback rank that answers `Missing`.
fn point_owner(map: &[(u64, u32)], id: u64, size: usize) -> usize {
    lookup(map, id).unwrap_or((id % size as u64) as usize)
}

/// Merge partial replies into the final answer under the wire total
/// orders. The partition of responders is unobservable: the result
/// equals a serial evaluation over the concatenated shards.
fn merge(kind: &QueryKind, parts: Vec<Answer>) -> Answer {
    // A typed time-travel miss from any responder is authoritative:
    // the commit schedule is global, so one miss means every shard
    // missed, and the merged answer must stay distinguishable from an
    // empty result.
    if parts.iter().any(|a| matches!(a, Answer::NotCommitted)) {
        return Answer::NotCommitted;
    }
    match kind {
        QueryKind::Point { .. } => parts
            .into_iter()
            .find(|a| !matches!(a, Answer::Missing))
            .unwrap_or(Answer::Missing),
        QueryKind::Region(_) => {
            let mut ids: Vec<u64> = Vec::new();
            for p in parts {
                if let Answer::Ids(part) = p {
                    ids.extend(part);
                }
            }
            ids.sort_unstable();
            Answer::Ids(ids)
        }
        QueryKind::Knn { k, .. } => {
            let mut hits: Vec<Hit> = Vec::new();
            for p in parts {
                if let Answer::Neighbors(part) = p {
                    hits.extend(part);
                }
            }
            hits.sort_by(hit_order);
            hits.truncate(*k as usize);
            Answer::Neighbors(hits)
        }
    }
}

struct Pending {
    query: Query,
    at_s: f64,
    expected: usize,
    parts: Vec<Answer>,
}

/// Run the query engine on this rank. `ics` must be identical on every
/// rank (the replicated-physics contract); ownership and answering are
/// partitioned internally.
pub fn run(comm: &mut Comm, ics: Vec<Body>, cfg: &EngineConfig) -> EngineOutput {
    let me = comm.rank();
    let size = comm.size();
    assert!(cfg.steps > 0 && cfg.checkpoint_every > 0);

    let mut sim = Simulation::new(ics, cfg.gravity, cfg.dt);
    let n = sim.bodies.len();

    let mut fleet_cfg = cfg.fleet;
    if fleet_cfg.n_bodies == 0 {
        fleet_cfg.n_bodies = n as u64;
    }
    let arrivals = fleet::schedule(&fleet_cfg, me);
    let mut next_arrival = 0usize;

    let mut stats = QueryStats::default();
    let mut replies = Vec::new();
    let mut commits = Vec::new();
    // Committed history lives in the store as full + dirty-cell delta
    // frames; time-travel reads materialize through a bounded LRU, so
    // decoded-generation memory stays flat however long the run gets.
    let mut log = GenerationLog::new(StoreConfig::default(), 0);
    let mut cache = SnapshotCache::new(cfg.history_cache);
    let mut last_commit: Option<u64> = None;

    let mut cur_owner = owner_map(&sim.bodies, size);
    let mut prev_owner;
    let mut prev_interactions = sim.stats.interactions();

    for t in 0..cfg.steps {
        // -- Physics: advance the replicated universe and charge the
        // force work to the virtual clock.
        if t > 0 {
            comm.span_enter("query.physics");
            sim.step();
            let inter = sim.stats.interactions();
            comm.compute_eff(
                (inter - prev_interactions) as f64 * 30.0,
                (n * 64) as f64,
                0.8,
            );
            prev_interactions = inter;
            comm.span_exit("query.physics");
            prev_owner = std::mem::replace(&mut cur_owner, owner_map(&sim.bodies, size));
        } else {
            prev_owner = cur_owner.clone();
        }
        let span = stripe(n, size, me);

        // -- Commit: write this rank's stripe into the snapshot store
        // (full frame first, dirty-cell deltas after), then frame the
        // record as this rank's crc-checked checkpoint shard.
        if t % cfg.checkpoint_every == 0 {
            let record = log.commit(t, &sim.bodies[span.clone()], &[]).to_vec();
            let hdr = ShardHeader {
                rank: me as u32,
                of_ranks: size as u32,
                step: t,
                time: sim.time,
            };
            comm.obs_count("query.commits", 1);
            comm.obs_count("store.commit_bytes", record.len() as u64);
            commits.push((t, ckpt::save_shard(&hdr, &record)));
            last_commit = Some(t);
        }

        // The physics tick's index, rebuilt from the already-Morton-
        // sorted bodies, serves every live query this tick.
        let index = QueryIndex::build(sim.bodies.clone(), cfg.gravity.leaf_max);

        // -- Issue: drain this tick's arrival window (the last tick
        // drains everything, so the run never strands a query).
        let last_tick = t + 1 == cfg.steps;
        let cutoff = if last_tick {
            f64::INFINITY
        } else {
            (t + 1) as f64 * cfg.tick_window_s
        };
        // Dispatch happens when the window closes: clients issued up to
        // `cutoff` in virtual time, so the clock must reach it before
        // any of them can be answered.
        let window_close = if last_tick {
            arrivals.last().map(|a| a.at_s).unwrap_or(0.0)
        } else {
            cutoff
        };
        if comm.time() < window_close {
            comm.elapse(window_close - comm.time());
        }

        let mut outbound: Vec<Vec<Query>> = vec![Vec::new(); size];
        let mut pending: HashMap<u64, Pending> = HashMap::new();
        let mut tick_qids: Vec<u64> = Vec::new();
        while next_arrival < arrivals.len() && arrivals[next_arrival].at_s <= cutoff {
            let a = arrivals[next_arrival];
            let qid = ((me as u64) << 32) | next_arrival as u64;
            next_arrival += 1;
            // An `uncommitted` client asks for the generation *after*
            // the newest commit — a step no rank has committed at
            // answer time, so every partial must be the typed miss.
            let at_step = if a.uncommitted {
                Some(last_commit.unwrap_or(0) + 1)
            } else if a.past {
                last_commit
            } else {
                None
            };
            let q = Query {
                qid,
                origin: me as u32,
                at_step,
                kind: a.kind,
            };
            stats.issued += 1;
            comm.obs_count("query.issued", 1);
            let expected = match (q.at_step, &q.kind) {
                // A live point lookup has exactly one responder; every
                // other class fans out to all ranks.
                (None, QueryKind::Point { .. }) => 1,
                _ => size,
            };
            pending.insert(
                qid,
                Pending {
                    query: q,
                    at_s: a.at_s,
                    expected,
                    parts: Vec::new(),
                },
            );
            tick_qids.push(qid);
            match (q.at_step, &q.kind) {
                (None, QueryKind::Point { id }) => {
                    outbound[point_owner(&prev_owner, *id, size)].push(q);
                }
                _ => {
                    for bucket in outbound.iter_mut() {
                        bucket.push(q);
                    }
                }
            }
        }

        // -- Route: one query vector per ordered rank pair.
        comm.span_enter("query.route");
        let mut inbox = std::mem::take(&mut outbound[me]);
        for (d, bucket) in outbound.iter_mut().enumerate() {
            if d != me {
                comm.send(d, route_tag(t), std::mem::take(bucket));
            }
        }
        for _ in 1..size {
            let (_, qs): (usize, Vec<Query>) = comm.recv(None, route_tag(t));
            inbox.extend(qs);
        }

        // -- Forward: a point query that raced a migration lands on the
        // previous owner, which re-routes it to the current owner.
        let mut fwd_out: Vec<Vec<Query>> = vec![Vec::new(); size];
        let mut to_answer: Vec<Query> = Vec::new();
        for q in inbox {
            match (q.at_step, &q.kind) {
                (None, QueryKind::Point { id }) => {
                    let owner = point_owner(&cur_owner, *id, size);
                    if owner == me {
                        to_answer.push(q);
                    } else {
                        stats.forwarded += 1;
                        comm.obs_count("query.forwarded", 1);
                        fwd_out[owner].push(q);
                    }
                }
                _ => to_answer.push(q),
            }
        }
        for (d, bucket) in fwd_out.iter_mut().enumerate() {
            if d != me {
                comm.send(d, forward_tag(t), std::mem::take(bucket));
            }
        }
        for _ in 1..size {
            let (_, qs): (usize, Vec<Query>) = comm.recv(None, forward_tag(t));
            to_answer.extend(qs);
        }
        comm.span_exit("query.route");

        // -- Answer: live queries against the owned span of the shared
        // index, time-travel queries against the committed shard.
        comm.span_enter("query.answer");
        let mut reply_out: Vec<ReplyBatch> = vec![ReplyBatch::default(); size];
        for q in &to_answer {
            let answer = match q.at_step {
                None => match &q.kind {
                    QueryKind::Point { id } => match index.point(*id) {
                        Some(hit) => Answer::Point(hit),
                        None => Answer::Missing,
                    },
                    QueryKind::Region(shape) => Answer::Ids(index.region_in(shape, span.clone())),
                    QueryKind::Knn { at, k } => {
                        Answer::Neighbors(index.knn_in(*at, *k as usize, span.clone()))
                    }
                },
                Some(s) if log.contains(s) => {
                    // Materialize through the bounded LRU, then read
                    // only the cells the footer index cannot rule out.
                    let snap = cache
                        .get_or_try_insert(s, || log.materialize(s))
                        .expect("own committed generation materializes");
                    let (answer, reads) = past::answer(snap, &q.kind);
                    comm.obs_count("store.cells_read", reads.cells_read);
                    comm.obs_count("store.cells_pruned", reads.cells_pruned);
                    answer
                }
                // The generation was never committed: a typed miss, so
                // the client can tell "no such generation" apart from
                // a genuinely empty region or an unknown id.
                Some(_) => Answer::NotCommitted,
            };
            reply_out[q.origin as usize]
                .replies
                .push(Reply { qid: q.qid, answer });
        }
        // Charge index-walk work for the batch.
        comm.compute_eff(
            to_answer.len() as f64 * 2.0e4 + 1.0e3,
            to_answer.len() as f64 * 256.0,
            0.6,
        );
        comm.span_exit("query.answer");

        // -- Reply + merge: exactly one batch per ordered rank pair.
        comm.span_enter("query.merge");
        let mut batches = vec![std::mem::take(&mut reply_out[me])];
        for (d, batch) in reply_out.iter_mut().enumerate() {
            if d != me {
                comm.send(d, reply_tag(t), std::mem::take(batch));
            }
        }
        for _ in 1..size {
            let (_, batch): (usize, ReplyBatch) = comm.recv(None, reply_tag(t));
            batches.push(batch);
        }
        for batch in batches {
            for r in batch.replies {
                match pending.get_mut(&r.qid) {
                    Some(p) => p.parts.push(r.answer),
                    None => stats.dup_replies += 1,
                }
            }
        }
        let done = comm.time();
        for qid in tick_qids {
            let p = pending.remove(&qid).expect("issued this tick");
            if p.parts.len() < p.expected {
                stats.unanswered += 1;
            } else if p.parts.len() > p.expected {
                stats.dup_replies += 1;
            }
            let answer = merge(&p.query.kind, p.parts);
            stats.answered += 1;
            comm.obs_count("query.answered", 1);
            if matches!(answer, Answer::Missing) {
                stats.not_found += 1;
                comm.obs_count("query.not_found", 1);
            }
            if matches!(answer, Answer::NotCommitted) {
                stats.time_travel_miss += 1;
                comm.obs_count("query.time_travel_miss", 1);
            }
            let lat = done - p.at_s;
            comm.obs_observe("query.latency_s", lat);
            if lat > fleet_cfg.timeout_s {
                stats.late += 1;
                comm.obs_count("query.late", 1);
            }
            replies.push(RecordedReply {
                qid,
                tick: t,
                at_step: p.query.at_step,
                kind: p.query.kind,
                answer,
                at_s: p.at_s,
                done_s: done,
            });
        }
        debug_assert!(pending.is_empty());
        comm.span_exit("query.merge");
    }

    EngineOutput {
        stats,
        replies,
        commits,
        history_decoded_peak: cache.peak,
        history_generations: log.generations(),
        store_commit_bytes: log.commit_bytes,
        store_full_bytes: log.full_bytes,
        end_s: comm.time(),
    }
}

/// Serial reference: the replicated body state after each tick's
/// physics, bit-identical to what every rank's engine held when it
/// answered that tick's live queries. `states[t]` pairs with
/// [`RecordedReply::tick`] `== t`.
pub fn replicated_states(ics: Vec<Body>, cfg: &EngineConfig) -> Vec<Vec<Body>> {
    let mut sim = Simulation::new(ics, cfg.gravity, cfg.dt);
    let mut out = vec![sim.bodies.clone()];
    for _ in 1..cfg.steps {
        sim.step();
        out.push(sim.bodies.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use hot::models::plummer;
    use msg::machine::Machine;

    fn small_cfg() -> EngineConfig {
        EngineConfig {
            steps: 3,
            checkpoint_every: 2,
            fleet: FleetConfig {
                per_rank: 12,
                ..FleetConfig::default()
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn stripes_partition_the_array() {
        for (n, size) in [(10, 3), (96, 16), (7, 8), (0, 4), (5, 1)] {
            let mut covered = 0;
            for r in 0..size {
                let s = stripe(n, size, r);
                assert_eq!(s.start, covered, "contiguous");
                covered = s.end;
            }
            assert_eq!(covered, n, "exhaustive");
        }
    }

    #[test]
    fn every_issued_query_is_answered_exactly_once() {
        for ranks in [1usize, 2, 4] {
            let cfg = small_cfg();
            let ics = plummer(64, 7);
            let outs = msg::comm::run_with(Machine::ideal(ranks as u32 + 2), ranks, {
                let ics = ics.clone();
                move |comm| run(comm, ics.clone(), &cfg)
            });
            for o in &outs {
                assert_eq!(o.stats.issued, cfg.fleet.per_rank);
                assert_eq!(o.stats.answered, cfg.fleet.per_rank);
                assert_eq!(o.stats.dup_replies, 0, "ranks={ranks}");
                assert_eq!(o.stats.unanswered, 0, "ranks={ranks}");
                assert_eq!(o.replies.len() as u64, cfg.fleet.per_rank);
            }
        }
    }

    #[test]
    fn single_rank_engine_matches_oracle_on_live_queries() {
        let cfg = small_cfg();
        let ics = plummer(48, 3);
        let states = replicated_states(ics.clone(), &cfg);
        let outs = msg::comm::run_with(Machine::ideal(3), 1, {
            let ics = ics.clone();
            move |comm| run(comm, ics.clone(), &cfg)
        });
        let mut live = 0;
        for r in &outs[0].replies {
            if r.at_step.is_none() {
                assert_eq!(
                    r.answer,
                    oracle::answer(&states[r.tick as usize], &r.kind),
                    "qid {}",
                    r.qid
                );
                live += 1;
            }
        }
        assert!(live > 0);
    }
}
