//! Time-travel answering over the columnar snapshot store.
//!
//! A committed generation is a [`store::Snapshot`] of this rank's
//! stripe. Instead of decoding the whole retained shard, each query
//! class prunes on the footer index and decodes only surviving cells:
//!
//! * **Point** — only cells whose `[id_min, id_max]` admits the id.
//! * **Region / cone** — only cells the shape's conservative
//!   `certainly_outside` bound cannot reject; membership is still
//!   decided per body by `Shape::contains`, so pruning stays an
//!   optimization.
//! * **kNN** — cells visited in lower-bound distance order, stopping
//!   once the bound exceeds the current k-th distance.
//!
//! Every result is *bit-identical* to [`crate::oracle`] over the fully
//! decoded stripe — the oracle tests quantify over exactly that.

use crate::wire::{dist2, hit_order, Answer, Hit, PointHit, QueryKind};
use store::Snapshot;

/// Footer-index effectiveness for one answered query.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadStats {
    pub cells_read: u64,
    pub cells_pruned: u64,
}

/// Answer `kind` against one rank's snapshot, reading only the cells
/// the footer index cannot rule out.
pub fn answer(snap: &Snapshot, kind: &QueryKind) -> (Answer, ReadStats) {
    let total = snap.cells.len() as u64;
    match kind {
        QueryKind::Point { id } => {
            let candidates = snap.cells_for_id(*id);
            let read = candidates.len() as u64;
            let mut hit = None;
            for i in candidates {
                let (bodies, _) = snap.decode_cell(i).expect("own commit decodes");
                if let Some(b) = bodies.iter().find(|b| b.id == *id) {
                    hit = Some(PointHit {
                        id: b.id,
                        pos: b.pos,
                        vel: b.vel,
                        mass: b.mass,
                    });
                    break;
                }
            }
            let answer = match hit {
                Some(h) => Answer::Point(h),
                None => Answer::Missing,
            };
            (answer, stats(read, total))
        }
        QueryKind::Region(shape) => {
            let survivors = snap.prune(|c, h| !shape.certainly_outside(c, h));
            let read = survivors.len() as u64;
            let mut ids = Vec::new();
            for i in survivors {
                let (bodies, _) = snap.decode_cell(i).expect("own commit decodes");
                ids.extend(
                    bodies
                        .iter()
                        .filter(|b| shape.contains(b.pos))
                        .map(|b| b.id),
                );
            }
            ids.sort_unstable();
            (Answer::Ids(ids), stats(read, total))
        }
        QueryKind::Knn { at, k } => {
            let (hits, read) = knn(snap, *at, *k as usize);
            (Answer::Neighbors(hits), stats(read, total))
        }
    }
}

/// Expanding cell search: visit cells by a conservative lower bound on
/// the distance to any body they can hold (deflated the same way the
/// live index walk deflates its bound, so float rounding can only make
/// the search *less* eager to stop, never wrong).
fn knn(snap: &Snapshot, at: [f64; 3], k: usize) -> (Vec<Hit>, u64) {
    if k == 0 {
        return (Vec::new(), 0);
    }
    let mut order: Vec<(f64, usize)> = (0..snap.cells.len())
        .map(|i| {
            let (center, half) = snap.cell_geometry(i);
            let rho = half * 1.732_050_807_568_877_3 * (1.0 + 1e-9);
            let lb = (dist2(at, center).sqrt() - rho).max(0.0) * (1.0 - 1e-9);
            (lb * lb, i)
        })
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut hits: Vec<Hit> = Vec::new();
    let mut read = 0u64;
    for (lb2, i) in order {
        if hits.len() == k && lb2 > hits[k - 1].dist2 {
            break;
        }
        read += 1;
        let (bodies, _) = snap.decode_cell(i).expect("own commit decodes");
        for b in &bodies {
            hits.push(Hit {
                id: b.id,
                dist2: dist2(at, b.pos),
            });
        }
        hits.sort_by(hit_order);
        // Anything ranked past k among bodies seen so far can never
        // re-enter the top k.
        hits.truncate(k);
    }
    (hits, read)
}

fn stats(read: u64, total: u64) -> ReadStats {
    ReadStats {
        cells_read: read,
        cells_pruned: total - read,
    }
}
