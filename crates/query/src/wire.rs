//! Query wire format and determinism rules.
//!
//! Everything that crosses a rank boundary is defined here, with an
//! explicit wire size per [`msg::Payload`] so the virtual-time transport
//! charges realistic bytes. The format is *fixed-width per query*
//! ([`Query`] is `Copy` and rides the `Vec<FixedWire>` blanket), while
//! replies are length-prefixed batches ([`ReplyBatch`]).
//!
//! Determinism rules (the contract the oracle tests pin):
//!
//! * **Region/cone** results are body ids sorted ascending — never the
//!   tree-walk discovery order, which is legitimately schedule- and
//!   partition-dependent.
//! * **kNN** results are sorted by `(dist2, id)` lexicographically, ties
//!   broken by the lower id; `dist2` is the exact `dx*dx + dy*dy + dz*dz`
//!   double — both the tree walk and the brute-force oracle evaluate the
//!   same expression through [`dist2`], which is what makes the results
//!   *bit*-identical, not merely set-equal.
//! * A merged distributed answer must equal the serial answer over the
//!   concatenated shards: partial replies are merged by re-sorting under
//!   the same total order, so the rank partition is unobservable.
//! * Shape membership is decided only by [`Shape::contains`]; index
//!   pruning must be conservative (inflated bounds) and may never decide
//!   membership itself.

use msg::payload::{FixedWire, Payload};

/// Tag base for the query protocol: well below `Tag::MAX / 2` (user
/// space) and disjoint from the simcheck exchanges at `1 << 20` /
/// `1 << 21`. Each simulation tick uses three consecutive tags
/// (route / forward / reply), so a run of `steps` ticks occupies
/// `[QUERY_TAG0, QUERY_TAG0 + 3 * steps)`.
pub const QUERY_TAG0: msg::Tag = 1 << 22;

/// Tag for the route phase of tick `step`.
pub fn route_tag(step: u64) -> msg::Tag {
    QUERY_TAG0 + 3 * step
}

/// Tag for the forward phase of tick `step` (mid-migration point
/// queries re-routed by the stale owner).
pub fn forward_tag(step: u64) -> msg::Tag {
    QUERY_TAG0 + 3 * step + 1
}

/// Tag for the partial-reply phase of tick `step`.
pub fn reply_tag(step: u64) -> msg::Tag {
    QUERY_TAG0 + 3 * step + 2
}

/// Exact squared distance — the one expression every membership and
/// ordering decision goes through (index walk, oracle scan, reply
/// merge). Inlining-stable: three multiplies and two adds, no fma.
#[inline]
pub fn dist2(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    dx * dx + dy * dy + dz * dz
}

/// A spatial predicate for region queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// All bodies with `dist2(pos, center) <= radius^2`.
    Ball { center: [f64; 3], radius: f64 },
    /// All bodies inside a cone: within `range` of `apex`, on the
    /// `axis` side, and within the half-angle whose cosine is
    /// `cos_half` (`axis` must be unit length, `cos_half` in `[0, 1]`).
    Cone {
        apex: [f64; 3],
        axis: [f64; 3],
        cos_half: f64,
        range: f64,
    },
}

impl Shape {
    /// Exact membership — the single deciding predicate.
    pub fn contains(&self, p: [f64; 3]) -> bool {
        match *self {
            Shape::Ball { center, radius } => dist2(p, center) <= radius * radius,
            Shape::Cone {
                apex,
                axis,
                cos_half,
                range,
            } => {
                let d2 = dist2(p, apex);
                if d2 > range * range {
                    return false;
                }
                let v = [p[0] - apex[0], p[1] - apex[1], p[2] - apex[2]];
                let along = v[0] * axis[0] + v[1] * axis[1] + v[2] * axis[2];
                // along >= cos_half * |v|  (both sides non-negative), as
                // along^2 >= cos^2 * d2 with the sign guard. The apex
                // itself (d2 == 0) is inside.
                along >= 0.0 && along * along >= cos_half * cos_half * d2
            }
        }
    }

    /// Conservative "a cube at `center` with half-side `half` cannot
    /// intersect this shape" test, used for tree pruning. Inflated by a
    /// relative slack of ~1e-9 so float rounding in the bound can never
    /// prune a cell whose bodies [`Shape::contains`] would accept —
    /// pruning must stay an optimization, never a semantic.
    pub fn certainly_outside(&self, center: [f64; 3], half: f64) -> bool {
        // Circumscribed-sphere radius of the cell, inflated.
        let rho = half * 1.732_050_807_568_877_3 * (1.0 + 1e-9);
        let (anchor, reach) = match *self {
            Shape::Ball { center: c, radius } => (c, radius),
            Shape::Cone { apex, range, .. } => (apex, range),
        };
        let d = dist2(center, anchor).sqrt();
        d > (reach + rho) * (1.0 + 1e-9) + 1e-300
    }
}

/// One query class instance. `Point` looks up a body by id; `Region`
/// collects ids inside a [`Shape`]; `Knn` finds the `k` nearest bodies
/// to a point (ties on distance broken by id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    Point { id: u64 },
    Region(Shape),
    Knn { at: [f64; 3], k: u32 },
}

/// A routed query. `at_step = None` is a live query against the current
/// tick's universe; `Some(s)` is a time-travel query against the
/// checkpoint generation committed at step `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// World-unique id: `origin_rank << 32 | sequence`.
    pub qid: u64,
    /// Rank the merged reply must return to.
    pub origin: u32,
    pub at_step: Option<u64>,
    pub kind: QueryKind,
}

impl FixedWire for Query {
    // qid + origin + at_step tag/value + kind tag + worst-case kind
    // payload (cone: 7 doubles).
    const WIRE: usize = 8 + 4 + 9 + 1 + 7 * 8;
}

/// One body, as a point-lookup answer carries it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointHit {
    pub id: u64,
    pub pos: [f64; 3],
    pub vel: [f64; 3],
    pub mass: f64,
}

/// One kNN neighbor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    pub id: u64,
    pub dist2: f64,
}

/// The total order every kNN result list (partial or merged) is sorted
/// by: distance first, lower id on ties. `dist2` is finite by
/// construction (positions and query points are finite).
pub fn hit_order(a: &Hit, b: &Hit) -> std::cmp::Ordering {
    a.dist2.total_cmp(&b.dist2).then(a.id.cmp(&b.id))
}

/// A (partial or merged) answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Point lookup found nothing (or a partial responder does not own
    /// the id).
    Missing,
    Point(PointHit),
    /// Region ids, sorted ascending.
    Ids(Vec<u64>),
    /// kNN hits, sorted by [`hit_order`].
    Neighbors(Vec<Hit>),
    /// Typed time-travel miss: the requested generation was never
    /// committed. Distinguishable on the wire from a genuinely empty
    /// region or an unknown id — a client retrying against a newer
    /// commit schedule needs to know which one it got.
    NotCommitted,
}

impl Answer {
    pub fn wire_bytes(&self) -> usize {
        1 + match self {
            Answer::Missing => 0,
            Answer::Point(_) => 8 + 7 * 8,
            Answer::Ids(ids) => 8 + 8 * ids.len(),
            Answer::Neighbors(hits) => 8 + 16 * hits.len(),
            Answer::NotCommitted => 0,
        }
    }
}

/// One partial reply on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    pub qid: u64,
    pub answer: Answer,
}

/// A batch of partial replies from one responder to one origin for one
/// tick. Exactly one batch (possibly empty) travels per ordered rank
/// pair per tick, which is what gives every tick a fixed message count
/// — the schedule-invariant structure the simcheck oracle pins.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplyBatch {
    pub replies: Vec<Reply>,
}

impl Payload for ReplyBatch {
    fn wire_bytes(&self) -> usize {
        8 + self
            .replies
            .iter()
            .map(|r| 8 + r.answer.wire_bytes())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ball_membership_is_inclusive_on_the_boundary() {
        let s = Shape::Ball {
            center: [0.0; 3],
            radius: 1.0,
        };
        assert!(s.contains([1.0, 0.0, 0.0]));
        assert!(!s.contains([1.0 + 1e-12, 0.0, 0.0]));
    }

    #[test]
    fn cone_membership_basics() {
        let s = Shape::Cone {
            apex: [0.0; 3],
            axis: [1.0, 0.0, 0.0],
            cos_half: 0.8,
            range: 2.0,
        };
        assert!(s.contains([1.0, 0.0, 0.0]), "on axis");
        assert!(s.contains([0.0; 3]), "apex belongs to the cone");
        assert!(!s.contains([-1.0, 0.0, 0.0]), "behind the apex");
        assert!(!s.contains([3.0, 0.0, 0.0]), "past the range");
        assert!(!s.contains([0.5, 0.5, 0.0]), "outside the half-angle");
        assert!(s.contains([0.8, 0.2, 0.0]), "inside the half-angle");
    }

    #[test]
    fn pruning_is_conservative() {
        let s = Shape::Ball {
            center: [0.0; 3],
            radius: 1.0,
        };
        // A cell whose circumscribed sphere touches the ball must not be
        // pruned even when no body is inside.
        assert!(!s.certainly_outside([1.5, 0.0, 0.0], 0.5));
        assert!(s.certainly_outside([5.0, 0.0, 0.0], 0.5));
    }

    #[test]
    fn hit_order_breaks_ties_by_id() {
        let a = Hit { id: 7, dist2: 1.0 };
        let b = Hit { id: 3, dist2: 1.0 };
        let c = Hit { id: 9, dist2: 0.5 };
        let mut v = vec![a, b, c];
        v.sort_by(hit_order);
        assert_eq!(
            v.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![9, 3, 7],
            "distance first, then id"
        );
    }

    #[test]
    fn wire_sizes_are_accounted() {
        let q = Query {
            qid: 1,
            origin: 0,
            at_step: None,
            kind: QueryKind::Point { id: 3 },
        };
        assert_eq!(vec![q; 4].wire_bytes(), 4 * Query::WIRE);
        let batch = ReplyBatch {
            replies: vec![Reply {
                qid: 1,
                answer: Answer::Ids(vec![1, 2, 3]),
            }],
        };
        assert_eq!(batch.wire_bytes(), 8 + 8 + 1 + 8 + 24);
    }

    #[test]
    fn tags_stay_in_user_space_and_apart_from_simcheck() {
        assert!(reply_tag(10_000) < msg::Tag::MAX / 2);
        assert!(route_tag(0) > (1 << 21), "clear of simcheck's tag bases");
    }
}
