//! The shared spatial index: one HOT tree serving every query class.
//!
//! [`QueryIndex`] wraps the Morton-sorted [`hot::Tree`] the physics
//! already builds each tick and adds the two lookups the walk does not
//! need: an id directory (point queries) and span-restricted traversals
//! (a rank answers only from the contiguous Morton range it owns, so a
//! region walk is a *Morton-range cell walk*: cells whose body interval
//! misses the owned span are skipped without touching geometry).
//!
//! Every traversal obeys the determinism rules in [`crate::wire`]:
//! pruning is conservative ([`Shape::certainly_outside`] with inflated
//! bounds), membership and ordering are decided only by the exact
//! shared predicates, and results are sorted under total orders before
//! they leave the index.

use crate::wire::{dist2, hit_order, Hit, PointHit, Shape};
use hot::tree::{Body, Tree, NO_CELL};
use std::ops::Range;

/// A tree plus an id directory, answering all query classes against one
/// snapshot of the universe.
pub struct QueryIndex {
    pub tree: Tree,
    /// `(body id, index into tree.bodies)`, sorted by id.
    ids: Vec<(u64, u32)>,
}

impl QueryIndex {
    /// Index a body set (builds the tree).
    pub fn build(bodies: Vec<Body>, leaf_max: usize) -> QueryIndex {
        QueryIndex::from_tree(Tree::build(bodies, leaf_max))
    }

    /// Index an already-built tree — the engine path: the physics tick
    /// built the tree for the force walk, queries reuse it as-is.
    pub fn from_tree(tree: Tree) -> QueryIndex {
        let mut ids: Vec<(u64, u32)> = tree
            .bodies
            .iter()
            .enumerate()
            .map(|(i, b)| (b.id, i as u32))
            .collect();
        ids.sort_unstable();
        QueryIndex { tree, ids }
    }

    pub fn len(&self) -> usize {
        self.tree.bodies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tree.bodies.is_empty()
    }

    pub fn bodies(&self) -> &[Body] {
        &self.tree.bodies
    }

    /// Index of the body with this id in the Morton-sorted array.
    pub fn locate(&self, id: u64) -> Option<usize> {
        self.ids
            .binary_search_by_key(&id, |&(bid, _)| bid)
            .ok()
            .map(|i| self.ids[i].1 as usize)
    }

    /// Q1: point lookup by id.
    pub fn point(&self, id: u64) -> Option<PointHit> {
        self.locate(id).map(|i| {
            let b = &self.tree.bodies[i];
            PointHit {
                id: b.id,
                pos: b.pos,
                vel: b.vel,
                mass: b.mass,
            }
        })
    }

    /// Q2 over the whole index.
    pub fn region(&self, shape: &Shape) -> Vec<u64> {
        self.region_in(shape, 0..self.len())
    }

    /// Q2 restricted to the owned body span: ids (sorted ascending) of
    /// bodies in `span` that the shape contains.
    pub fn region_in(&self, shape: &Shape, span: Range<usize>) -> Vec<u64> {
        let mut out = Vec::new();
        if span.is_empty() || self.is_empty() {
            return out;
        }
        let mut stack: Vec<i32> = vec![0];
        while let Some(ci) = stack.pop() {
            let cell = self.tree.cell(ci);
            let lo = cell.first_body as usize;
            let hi = lo + cell.nbody as usize;
            // Morton-range prune: the cell's bodies are the contiguous
            // interval [lo, hi); skip it when that interval misses the
            // owned span.
            if hi <= span.start || lo >= span.end {
                continue;
            }
            if shape.certainly_outside(cell.center, cell.half) {
                continue;
            }
            if cell.is_leaf {
                let a = lo.max(span.start);
                let b = hi.min(span.end);
                for body in &self.tree.bodies[a..b] {
                    if shape.contains(body.pos) {
                        out.push(body.id);
                    }
                }
            } else {
                for &child in &cell.children {
                    if child != NO_CELL {
                        stack.push(child);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Q3 over the whole index.
    pub fn knn(&self, at: [f64; 3], k: usize) -> Vec<Hit> {
        self.knn_in(at, k, 0..self.len())
    }

    /// Q3 restricted to the owned body span: the `k` nearest bodies by
    /// `(dist2, id)`, found with an expanding ball over the tree —
    /// cells are visited nearest-first and the walk stops once the
    /// closest unvisited cell lies beyond the current k-th neighbor.
    pub fn knn_in(&self, at: [f64; 3], k: usize, span: Range<usize>) -> Vec<Hit> {
        let mut best: Vec<Hit> = Vec::with_capacity(k + 1);
        if k == 0 || span.is_empty() || self.is_empty() {
            return best;
        }
        // Min-heap of (conservative lower-bound distance, cell index).
        // The bound is deflated so float rounding can never make the
        // early-out skip a cell holding a true neighbor.
        let mut heap: std::collections::BinaryHeap<(std::cmp::Reverse<u64>, i32)> =
            Default::default();
        let bound = |ci: i32| -> f64 {
            let cell = self.tree.cell(ci);
            let rho = cell.half * 1.732_050_807_568_877_3 * (1.0 + 1e-9);
            let d = dist2(at, cell.center).sqrt();
            ((d - rho).max(0.0)) * (1.0 - 1e-9)
        };
        // f64 -> order-preserving u64 (distances are non-negative
        // finite, so the raw bits already sort correctly).
        let fkey = |d: f64| d.to_bits();
        heap.push((std::cmp::Reverse(fkey(bound(0))), 0));
        while let Some((std::cmp::Reverse(dkey), ci)) = heap.pop() {
            if best.len() == k {
                let worst = best[k - 1].dist2.sqrt();
                if f64::from_bits(dkey) > worst {
                    break;
                }
            }
            let cell = self.tree.cell(ci);
            let lo = cell.first_body as usize;
            let hi = lo + cell.nbody as usize;
            if hi <= span.start || lo >= span.end {
                continue;
            }
            if cell.is_leaf {
                let a = lo.max(span.start);
                let b = hi.min(span.end);
                for body in &self.tree.bodies[a..b] {
                    let h = Hit {
                        id: body.id,
                        dist2: dist2(at, body.pos),
                    };
                    let pos = best
                        .binary_search_by(|probe| hit_order(probe, &h))
                        .unwrap_or_else(|e| e);
                    if pos < k {
                        best.insert(pos, h);
                        best.truncate(k);
                    }
                }
            } else {
                for &child in &cell.children {
                    if child != NO_CELL {
                        heap.push((std::cmp::Reverse(fkey(bound(child))), child));
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use hot::models::plummer;

    #[test]
    fn point_lookup_finds_every_body_and_rejects_unknown_ids() {
        let ics = plummer(200, 9);
        let idx = QueryIndex::build(ics.clone(), 8);
        for b in &ics {
            let hit = idx.point(b.id).expect("every ic body is indexed");
            assert_eq!(hit.pos, b.pos);
            assert_eq!(hit.mass, b.mass);
        }
        assert!(idx.point(1 << 40).is_none());
    }

    #[test]
    fn span_restricted_walks_partition_the_answer() {
        let idx = QueryIndex::build(plummer(300, 4), 8);
        let shape = Shape::Ball {
            center: [0.1, -0.2, 0.0],
            radius: 0.8,
        };
        let whole = idx.region(&shape);
        // Any 3-way split of the body array must partition the answer.
        let n = idx.len();
        let mut stitched: Vec<u64> = Vec::new();
        for r in 0..3 {
            stitched.extend(idx.region_in(&shape, (r * n / 3)..((r + 1) * n / 3)));
        }
        stitched.sort_unstable();
        assert_eq!(stitched, whole);
        assert_eq!(whole, oracle::region(idx.bodies(), &shape));
    }

    #[test]
    fn knn_expanding_ball_matches_brute_force() {
        let idx = QueryIndex::build(plummer(250, 17), 8);
        for (i, &k) in [1usize, 3, 8, 32, 250, 400].iter().enumerate() {
            let at = [0.05 * i as f64, -0.1, 0.2];
            assert_eq!(idx.knn(at, k), oracle::knn(idx.bodies(), at, k), "k = {k}");
        }
    }

    #[test]
    fn empty_span_and_k_zero_are_empty() {
        let idx = QueryIndex::build(plummer(50, 1), 8);
        let shape = Shape::Ball {
            center: [0.0; 3],
            radius: 10.0,
        };
        assert!(idx.region_in(&shape, 10..10).is_empty());
        assert!(idx.knn([0.0; 3], 0).is_empty());
    }
}
