//! `query` — simulation-as-a-service: an interactive query engine over
//! live and checkpointed universes.
//!
//! The Space Simulator's runs were batch jobs: submit, wait, read the
//! output files. This crate grows the cluster into a service — while the
//! replicated N-body universe advances, a seeded open-loop client fleet
//! ([`fleet`]) issues point lookups, region/cone scans, k-nearest-
//! neighbour searches, and time-travel queries against committed
//! checkpoint generations. Queries batch per simulation tick and are
//! answered from one shared spatial index ([`index`]) that reuses the
//! Morton-sorted HOT tree the physics already builds; distributed
//! execution rides the `msg` virtual-time transport ([`engine`]), with
//! replies merged deterministically so the rank partition is
//! unobservable. A brute-force O(N) oracle ([`oracle`]) defines the
//! semantics every optimized path must reproduce bit for bit.

pub mod engine;
pub mod fleet;
pub mod index;
pub mod oracle;
pub mod past;
pub mod wire;

pub use engine::{
    replicated_states, run, stripe, EngineConfig, EngineOutput, QueryStats, RecordedReply,
};
pub use fleet::{Arrival, FleetConfig, SplitMix64};
pub use index::QueryIndex;
pub use wire::{Answer, Hit, PointHit, Query, QueryKind, Reply, ReplyBatch, Shape};
