//! `query_load` — drive the interactive query engine with a seeded
//! open-loop client fleet and print service-level stats.
//!
//! ```text
//! cargo run --release -p query --bin query_load -- \
//!     --ranks 16 --bodies 512 --steps 6 --per-rank 64 --seed 42
//! ```

use msg::machine::Machine;
use query::{run, EngineConfig, FleetConfig};

fn arg(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ranks = arg(&args, "--ranks").unwrap_or(16) as usize;
    let bodies = arg(&args, "--bodies").unwrap_or(256) as usize;
    let steps = arg(&args, "--steps").unwrap_or(6);
    let per_rank = arg(&args, "--per-rank").unwrap_or(48);
    let seed = arg(&args, "--seed").unwrap_or(42);

    let cfg = EngineConfig {
        steps,
        fleet: FleetConfig {
            seed,
            per_rank,
            ..FleetConfig::default()
        },
        ..EngineConfig::default()
    };
    let ics = hot::models::plummer(bodies, seed);

    let outs = msg::comm::run_with(Machine::space_simulator_lam(), ranks, {
        let ics = ics.clone();
        let cfg = cfg;
        move |comm| run(comm, ics.clone(), &cfg)
    });

    let mut issued = 0u64;
    let mut answered = 0u64;
    let mut forwarded = 0u64;
    let mut late = 0u64;
    let mut not_found = 0u64;
    let mut end_s = 0.0f64;
    let mut lats: Vec<f64> = Vec::new();
    for o in &outs {
        issued += o.stats.issued;
        answered += o.stats.answered;
        forwarded += o.stats.forwarded;
        late += o.stats.late;
        not_found += o.stats.not_found;
        end_s = end_s.max(o.end_s);
        lats.extend(o.replies.iter().map(|r| r.done_s - r.at_s));
        assert_eq!(o.stats.dup_replies, 0, "protocol bug: duplicate replies");
        assert_eq!(o.stats.unanswered, 0, "protocol bug: dropped queries");
    }
    lats.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        if lats.is_empty() {
            return 0.0;
        }
        lats[((lats.len() - 1) as f64 * p) as usize]
    };

    println!("{{");
    println!("  \"ranks\": {ranks}, \"bodies\": {bodies}, \"steps\": {steps},");
    println!("  \"issued\": {issued}, \"answered\": {answered}, \"forwarded\": {forwarded},");
    println!("  \"late\": {late}, \"not_found\": {not_found},");
    println!("  \"end_vtime_s\": {end_s:.6},");
    println!("  \"queries_per_s\": {:.1},", answered as f64 / end_s);
    println!(
        "  \"latency_s\": {{ \"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6} }}",
        q(0.50),
        q(0.95),
        q(0.99)
    );
    println!("}}");
}
