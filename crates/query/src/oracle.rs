//! The brute-force O(N) oracle: the semantics every index walk and
//! every distributed merge must reproduce *bit for bit*.
//!
//! Each function is a plain scan over the body array using exactly the
//! shared predicates from [`crate::wire`] — no pruning, no tree, no
//! partitioning — followed by the same deterministic sort the real
//! engine applies. The property tests quantify over seeded ICs and rank
//! counts and assert `engine result == oracle result` with `==`, so any
//! divergence (a float re-association, a tie broken differently, a
//! body missed by over-eager pruning) fails loudly.

use crate::wire::{dist2, hit_order, Hit, PointHit, QueryKind, Shape};
use hot::tree::Body;

/// Q1: point lookup by id.
pub fn point(bodies: &[Body], id: u64) -> Option<PointHit> {
    bodies.iter().find(|b| b.id == id).map(|b| PointHit {
        id: b.id,
        pos: b.pos,
        vel: b.vel,
        mass: b.mass,
    })
}

/// Q2: ids inside the shape, sorted ascending.
pub fn region(bodies: &[Body], shape: &Shape) -> Vec<u64> {
    let mut out: Vec<u64> = bodies
        .iter()
        .filter(|b| shape.contains(b.pos))
        .map(|b| b.id)
        .collect();
    out.sort_unstable();
    out
}

/// Q3: the k nearest bodies by `(dist2, id)`.
pub fn knn(bodies: &[Body], at: [f64; 3], k: usize) -> Vec<Hit> {
    let mut all: Vec<Hit> = bodies
        .iter()
        .map(|b| Hit {
            id: b.id,
            dist2: dist2(at, b.pos),
        })
        .collect();
    all.sort_by(hit_order);
    all.truncate(k);
    all
}

/// Evaluate any live query kind against a full body set — the one entry
/// point the correctness tests use.
pub fn answer(bodies: &[Body], kind: &QueryKind) -> crate::wire::Answer {
    use crate::wire::Answer;
    match kind {
        QueryKind::Point { id } => match point(bodies, *id) {
            Some(hit) => Answer::Point(hit),
            None => Answer::Missing,
        },
        QueryKind::Region(shape) => Answer::Ids(region(bodies, shape)),
        QueryKind::Knn { at, k } => Answer::Neighbors(knn(bodies, *at, *k as usize)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot::models::plummer;

    #[test]
    fn knn_of_whole_set_is_a_total_sort() {
        let ics = plummer(40, 3);
        let hits = knn(&ics, [0.0; 3], 40);
        assert_eq!(hits.len(), 40);
        for w in hits.windows(2) {
            assert!(hit_order(&w[0], &w[1]).is_le());
        }
    }

    #[test]
    fn region_of_everything_returns_all_ids_sorted() {
        let ics = plummer(60, 5);
        let shape = Shape::Ball {
            center: [0.0; 3],
            radius: 1e9,
        };
        let ids = region(&ics, &shape);
        let mut expect: Vec<u64> = ics.iter().map(|b| b.id).collect();
        expect.sort_unstable();
        assert_eq!(ids, expect);
    }
}
