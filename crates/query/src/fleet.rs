//! The seeded open-loop client fleet.
//!
//! Each rank hosts one synthetic client stream: a pure function of
//! `(seed, rank)` producing queries with virtual-time arrivals at a
//! target rate, mixed over the four classes. *Open-loop* means arrivals
//! never wait for replies — the arrival clock marches on whether or not
//! the engine keeps up, so sustained queries/s and the latency
//! percentiles measure the engine, not the generator.
//!
//! Determinism: the generator uses only SplitMix64 integer mixing and
//! basic float arithmetic (`sqrt` is IEEE-exact; no `ln`/trig), so the
//! committed bench numbers are bit-stable across platforms. Inter-
//! arrival gaps are `(0.5 + u) / rate` with `u` uniform in `[0, 1)` —
//! mean `1/rate`, bounded jitter — rather than exponential, which would
//! drag a non-portable `ln` into committed artifacts.

use crate::wire::{QueryKind, Shape};

/// SplitMix64 — same tiny generator the cluster ICs use (duplicated
/// here because `query` sits below `cluster` in the crate DAG).
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }

    /// Uniform in `[-1, 1)`.
    pub fn sym(&mut self) -> f64 {
        2.0 * self.unit() - 1.0
    }
}

/// Knobs for one fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    pub seed: u64,
    /// Arrival rate per rank, queries per virtual second.
    pub rate_hz: f64,
    /// Queries each rank issues over the run.
    pub per_rank: u64,
    /// Client patience: a reply later than this after arrival counts as
    /// `query.late` (the exactly-once oracle requires zero).
    pub timeout_s: f64,
    /// Body-id universe `[0, n_bodies)`; a slice of ids above it is
    /// also sampled so the Missing path stays exercised.
    pub n_bodies: u64,
    /// Spatial extent query geometry samples within (the IC scale).
    pub span: f64,
    /// Largest k a kNN query asks for.
    pub knn_max: u32,
    /// Fraction (per mille) of queries that are time-travel.
    pub past_per_mille: u32,
    /// Fraction (per mille) of *time-travel* queries that ask for a
    /// generation the commit schedule never produced — the typed-miss
    /// (`Answer::NotCommitted`) path. Zero (the default) draws nothing
    /// from the stream, so existing schedules stay byte-identical.
    pub uncommitted_per_mille: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 42,
            rate_hz: 2.0e5,
            per_rank: 24,
            timeout_s: 5.0e-3,
            n_bodies: 0,
            span: 2.0,
            knn_max: 8,
            past_per_mille: 250,
            uncommitted_per_mille: 0,
        }
    }
}

/// One scheduled client query: what to ask and when it arrives.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Virtual arrival time (seconds from run start).
    pub at_s: f64,
    /// This query wants the newest *committed* generation instead of
    /// the live universe; the engine resolves the concrete step at
    /// issue time (the client only knows "the past", not the commit
    /// schedule).
    pub past: bool,
    /// This time-travel query targets a generation that was never
    /// committed; the engine must answer it with the typed
    /// `NotCommitted` miss, never an empty partial.
    pub uncommitted: bool,
    pub kind: QueryKind,
}

/// The full arrival schedule for one rank: `per_rank` queries, strictly
/// increasing arrival times, deterministic in `(cfg.seed, rank)`.
pub fn schedule(cfg: &FleetConfig, rank: usize) -> Vec<Arrival> {
    let mut rng = SplitMix64(cfg.seed ^ (rank as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.per_rank as usize);
    for _ in 0..cfg.per_rank {
        t += (0.5 + rng.unit()) / cfg.rate_hz;
        let past = (rng.next_u64() % 1000) < cfg.past_per_mille as u64;
        // Drawn only when the knob is armed, so default-config streams
        // are byte-identical to what they were before the knob existed.
        let uncommitted = past
            && cfg.uncommitted_per_mille > 0
            && (rng.next_u64() % 1000) < cfg.uncommitted_per_mille as u64;
        let kind = match rng.next_u64() % 3 {
            0 => {
                // Mostly-valid ids with a 1/8 slice of misses.
                let hi = cfg.n_bodies + cfg.n_bodies / 8 + 1;
                QueryKind::Point {
                    id: rng.next_u64() % hi.max(1),
                }
            }
            1 => {
                let center = [
                    rng.sym() * cfg.span,
                    rng.sym() * cfg.span,
                    rng.sym() * cfg.span,
                ];
                if rng.next_u64().is_multiple_of(4) {
                    // Cone: unit axis via normalized sample (sqrt only),
                    // half-angle cosine in [0.5, 0.95].
                    let raw = [rng.sym() + 1e-3, rng.sym() + 1e-3, rng.sym() + 1e-3];
                    let norm = (raw[0] * raw[0] + raw[1] * raw[1] + raw[2] * raw[2]).sqrt();
                    QueryKind::Region(Shape::Cone {
                        apex: center,
                        axis: [raw[0] / norm, raw[1] / norm, raw[2] / norm],
                        cos_half: 0.5 + 0.45 * rng.unit(),
                        range: (0.2 + rng.unit()) * cfg.span,
                    })
                } else {
                    QueryKind::Region(Shape::Ball {
                        center,
                        radius: (0.1 + rng.unit()) * cfg.span * 0.5,
                    })
                }
            }
            _ => QueryKind::Knn {
                at: [
                    rng.sym() * cfg.span,
                    rng.sym() * cfg.span,
                    rng.sym() * cfg.span,
                ],
                k: 1 + (rng.next_u64() % cfg.knn_max as u64) as u32,
            },
        };
        out.push(Arrival {
            at_s: t,
            past,
            uncommitted,
            kind,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FleetConfig {
        FleetConfig {
            n_bodies: 100,
            per_rank: 200,
            ..Default::default()
        }
    }

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let a = schedule(&cfg(), 3);
        let b = schedule(&cfg(), 3);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_s.to_bits(), y.at_s.to_bits());
            assert_eq!(x.kind, y.kind);
        }
        for w in a.windows(2) {
            assert!(w[0].at_s < w[1].at_s, "arrivals strictly increase");
        }
        assert_ne!(
            schedule(&cfg(), 0)[0].kind,
            schedule(&cfg(), 1)[0].kind,
            "ranks draw distinct streams"
        );
    }

    #[test]
    fn mix_covers_every_class() {
        let a = schedule(&cfg(), 0);
        let mut point = 0;
        let mut ball = 0;
        let mut cone = 0;
        let mut knn = 0;
        let mut past = 0;
        for q in &a {
            match q.kind {
                QueryKind::Point { .. } => point += 1,
                QueryKind::Region(Shape::Ball { .. }) => ball += 1,
                QueryKind::Region(Shape::Cone { .. }) => cone += 1,
                QueryKind::Knn { .. } => knn += 1,
            }
            past += q.past as u64;
        }
        assert!(
            point > 0 && ball > 0 && cone > 0 && knn > 0,
            "mix degenerate"
        );
        assert!(past > 0, "no time-travel queries in the mix");
    }

    #[test]
    fn arrival_rate_is_near_target() {
        let c = cfg();
        let a = schedule(&c, 0);
        let horizon = a.last().unwrap().at_s;
        let rate = a.len() as f64 / horizon;
        assert!(
            (rate / c.rate_hz - 1.0).abs() < 0.1,
            "open-loop rate {rate} vs target {}",
            c.rate_hz
        );
    }
}
