//! The brute-force-oracle test harness (ISSUE satellite 1 & 2, live
//! half): every distributed query answer — point, region/cone, kNN,
//! time-travel — must be *bit-identical* to an O(N) scan of the full
//! body set at the queried virtual time, across 1/2/4/16 ranks. Region
//! ids compare as sorted vectors; kNN compares `(dist2, id)` pairs with
//! exact float equality; time-travel answers are checked against the
//! state the checkpoint generation was committed at, which is exactly
//! what the same query would have seen live at that tick.

use hot::models::plummer;
use hot::tree::Body;
use msg::machine::Machine;
use query::{oracle, replicated_states, run, EngineConfig, EngineOutput, FleetConfig, QueryKind};

fn cfg(per_rank: u64) -> EngineConfig {
    EngineConfig {
        // A chunky timestep so bodies genuinely cross stripe boundaries
        // between ticks — the mid-migration paths stay hot.
        dt: 0.05,
        steps: 4,
        checkpoint_every: 2,
        fleet: FleetConfig {
            per_rank,
            ..FleetConfig::default()
        },
        ..EngineConfig::default()
    }
}

fn run_engine(ranks: usize, ics: &[Body], cfg: &EngineConfig) -> Vec<EngineOutput> {
    let ics = ics.to_vec();
    let cfg = *cfg;
    msg::comm::run_with(Machine::ideal(ranks as u32 + 2), ranks, move |comm| {
        run(comm, ics.clone(), &cfg)
    })
}

#[test]
fn every_query_class_matches_the_oracle_across_rank_counts() {
    let ics = plummer(96, 11);
    let cfg = cfg(32);
    let states = replicated_states(ics.clone(), &cfg);
    for ranks in [1usize, 2, 4, 16] {
        let outs = run_engine(ranks, &ics, &cfg);
        let mut point = 0u64;
        let mut region = 0u64;
        let mut knn = 0u64;
        let mut past = 0u64;
        for o in &outs {
            for r in &o.replies {
                // Live queries saw the replicated state after `tick`
                // steps; time-travel queries saw the union of the
                // shards committed at `at_step` — the same body set the
                // serial reference holds for that step.
                let reference = match r.at_step {
                    None => &states[r.tick as usize],
                    Some(s) => {
                        past += 1;
                        &states[s as usize]
                    }
                };
                match r.kind {
                    QueryKind::Point { .. } => point += 1,
                    QueryKind::Region(_) => region += 1,
                    QueryKind::Knn { .. } => knn += 1,
                }
                assert_eq!(
                    r.answer,
                    oracle::answer(reference, &r.kind),
                    "ranks={ranks} qid={} kind={:?} at_step={:?}",
                    r.qid,
                    r.kind,
                    r.at_step
                );
            }
        }
        assert!(
            point > 0 && region > 0 && knn > 0 && past > 0,
            "ranks={ranks}: degenerate mix point={point} region={region} knn={knn} past={past}"
        );
    }
}

#[test]
fn exactly_once_accounting_holds_on_every_rank_count() {
    let ics = plummer(64, 5);
    let cfg = cfg(24);
    for ranks in [1usize, 2, 4, 16] {
        for o in run_engine(ranks, &ics, &cfg) {
            assert_eq!(o.stats.issued, cfg.fleet.per_rank, "ranks={ranks}");
            assert_eq!(o.stats.answered, cfg.fleet.per_rank, "ranks={ranks}");
            assert_eq!(o.stats.dup_replies, 0, "ranks={ranks}");
            assert_eq!(o.stats.unanswered, 0, "ranks={ranks}");
            assert_eq!(o.replies.len() as u64, o.stats.answered);
        }
    }
}

#[test]
fn answers_are_independent_of_the_rank_partition() {
    // The same client stream (rank 0's) must get bit-identical answers
    // whether the universe is served by 1 rank or 16 — the partition is
    // unobservable.
    let ics = plummer(80, 23);
    let cfg = cfg(24);
    let solo = run_engine(1, &ics, &cfg);
    for ranks in [2usize, 4, 16] {
        let outs = run_engine(ranks, &ics, &cfg);
        assert_eq!(
            outs[0].replies.len(),
            solo[0].replies.len(),
            "ranks={ranks}"
        );
        for (a, b) in outs[0].replies.iter().zip(&solo[0].replies) {
            assert_eq!(a.qid, b.qid);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.at_step, b.at_step);
            assert_eq!(a.answer, b.answer, "ranks={ranks} qid={}", a.qid);
        }
    }
}

#[test]
fn time_travel_sees_genuinely_old_generations() {
    // With commits at steps 0 and 2, a past query batched into tick 3
    // must answer from generation 2 — one step behind the live universe
    // — and still match the oracle at *that* time, not the present.
    let ics = plummer(96, 31);
    let cfg = cfg(48);
    let states = replicated_states(ics.clone(), &cfg);
    let outs = run_engine(4, &ics, &cfg);
    let mut stale_hits = 0u64;
    for o in &outs {
        for r in &o.replies {
            if let (Some(s), 3) = (r.at_step, r.tick) {
                assert_eq!(s, 2, "tick 3 must target the step-2 generation");
                assert_eq!(r.answer, oracle::answer(&states[2], &r.kind));
                // The universe moved between step 2 and step 3, so for a
                // region query the answer at step 2 may differ from the
                // live answer — count the ones where it demonstrably
                // does, proving we read history rather than the present.
                if oracle::answer(&states[3], &r.kind) != r.answer {
                    stale_hits += 1;
                }
            }
        }
    }
    assert!(
        stale_hits > 0,
        "no time-travel answer differed from the live universe — \
         the history path is not being exercised"
    );
}

#[test]
fn committed_shards_roundtrip_and_union_to_the_full_state() {
    // Satellite 2, storage half: the per-rank shard bytes the engine
    // committed decode through `ckpt` with intact headers, materialize
    // through the snapshot store (generation 2 is a dirty-cell delta
    // against generation 0), and the union over ranks is bit-for-bit
    // the replicated state at that step.
    let ics = plummer(96, 31);
    let cfg = cfg(8);
    let states = replicated_states(ics.clone(), &cfg);
    let ranks = 4usize;
    let outs = run_engine(ranks, &ics, &cfg);
    for step in [0u64, 2] {
        let mut union: Vec<Body> = Vec::new();
        for (r, o) in outs.iter().enumerate() {
            // Decode the whole commit chain so delta generations have
            // their base: (step, store record bytes) in commit order.
            let records: Vec<(u64, Vec<u8>)> = o
                .commits
                .iter()
                .map(|(s, bytes)| {
                    let (hdr, record): (ckpt::ShardHeader, Vec<u8>) =
                        ckpt::load_shard(bytes).expect("shard decodes");
                    assert_eq!(hdr.rank, r as u32);
                    assert_eq!(hdr.of_ranks, ranks as u32);
                    assert_eq!(hdr.step, *s);
                    (*s, record)
                })
                .collect();
            let snap =
                store::log::materialize_records(&records, step).expect("generation materializes");
            let (shard, _aux) = snap.decode_all().expect("snapshot decodes");
            union.extend(shard);
        }
        let mut expect = states[step as usize].clone();
        union.sort_by_key(|b| b.id);
        expect.sort_by_key(|b| b.id);
        assert_eq!(union.len(), expect.len());
        for (a, b) in union.iter().zip(&expect) {
            assert_eq!(a.id, b.id);
            for d in 0..3 {
                assert_eq!(a.pos[d].to_bits(), b.pos[d].to_bits(), "id {}", a.id);
                assert_eq!(a.vel[d].to_bits(), b.vel[d].to_bits(), "id {}", a.id);
            }
            assert_eq!(a.mass.to_bits(), b.mass.to_bits());
        }
    }
}

#[test]
fn uncommitted_generations_answer_with_the_typed_miss_across_rank_counts() {
    // Satellite: a time-travel query for a generation the commit
    // schedule never produced must come back as `Answer::NotCommitted`
    // — typed, counted, and distinguishable from an empty region or an
    // unknown id — on every rank count, while the rest of the stream
    // still matches the oracle bit for bit.
    let ics = plummer(96, 17);
    let mut cfg = cfg(32);
    cfg.fleet.uncommitted_per_mille = 600;
    let states = replicated_states(ics.clone(), &cfg);
    for ranks in [1usize, 2, 4, 16] {
        let outs = run_engine(ranks, &ics, &cfg);
        let mut missed = 0u64;
        for o in &outs {
            let mut stat_misses = 0u64;
            for r in &o.replies {
                match r.at_step {
                    // The engine targets `last_commit + 1` for
                    // uncommitted clients; with commits every 2 steps
                    // that is always an odd, never-committed step.
                    Some(s) if s % cfg.checkpoint_every != 0 => {
                        assert_eq!(
                            r.answer,
                            query::Answer::NotCommitted,
                            "ranks={ranks} qid={} asked for uncommitted step {s}",
                            r.qid
                        );
                        missed += 1;
                        stat_misses += 1;
                    }
                    Some(s) => {
                        assert_eq!(r.answer, oracle::answer(&states[s as usize], &r.kind));
                    }
                    None => {
                        assert_eq!(r.answer, oracle::answer(&states[r.tick as usize], &r.kind));
                    }
                }
            }
            assert_eq!(
                o.stats.time_travel_miss, stat_misses,
                "ranks={ranks}: query.time_travel_miss must count exactly the typed misses"
            );
            assert_eq!(o.stats.unanswered, 0, "ranks={ranks}");
            assert_eq!(o.stats.dup_replies, 0, "ranks={ranks}");
        }
        assert!(
            missed > 0,
            "ranks={ranks}: the uncommitted path was never exercised"
        );
    }
}

#[test]
fn history_memory_stays_bounded_on_long_service_runs() {
    // Satellite: committed history used to accumulate decoded shard
    // bodies forever. Now the store holds full + dirty-cell delta
    // frames and decoded generations live in a bounded LRU — a long
    // run with a commit every tick must keep the decoded peak at the
    // configured cache size while every time-travel answer still
    // matches the oracle.
    let ics = plummer(96, 29);
    let cfg = EngineConfig {
        dt: 0.02,
        steps: 24,
        checkpoint_every: 1,
        history_cache: 2,
        fleet: FleetConfig {
            per_rank: 96,
            past_per_mille: 500,
            ..FleetConfig::default()
        },
        ..EngineConfig::default()
    };
    let states = replicated_states(ics.clone(), &cfg);
    let outs = run_engine(4, &ics, &cfg);
    for o in &outs {
        assert_eq!(o.history_generations, cfg.steps as usize);
        assert!(
            o.history_decoded_peak <= cfg.history_cache,
            "decoded-generation peak {} exceeds the cache bound {}",
            o.history_decoded_peak,
            cfg.history_cache
        );
        assert!(
            o.store_commit_bytes < o.store_full_bytes,
            "incremental commits ({} bytes) must beat full snapshots ({} bytes)",
            o.store_commit_bytes,
            o.store_full_bytes
        );
        let mut past = 0u64;
        for r in &o.replies {
            if let Some(s) = r.at_step {
                assert_eq!(r.answer, oracle::answer(&states[s as usize], &r.kind));
                past += 1;
            }
        }
        assert!(past > 0, "long run exercised no time-travel queries");
    }
}

#[test]
fn identical_runs_agree_on_everything_but_the_clock() {
    // Delivery order races between runs, so completion times (`done_s`)
    // legitimately differ — but stats, answers, tick assignment, and
    // committed shard bytes are pure functions of (ics, config) and
    // must be bit-identical.
    let ics = plummer(64, 13);
    let cfg = cfg(20);
    let a = run_engine(4, &ics, &cfg);
    let b = run_engine(4, &ics, &cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.stats, y.stats);
        assert_eq!(x.commits, y.commits);
        assert_eq!(x.replies.len(), y.replies.len());
        for (p, q) in x.replies.iter().zip(&y.replies) {
            assert_eq!(p.qid, q.qid);
            assert_eq!(p.tick, q.tick);
            assert_eq!(p.at_step, q.at_step);
            assert_eq!(p.kind, q.kind);
            assert_eq!(p.at_s.to_bits(), q.at_s.to_bits());
            assert_eq!(p.answer, q.answer, "qid {}", p.qid);
        }
    }
}
