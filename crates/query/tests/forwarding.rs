//! Regression for the mid-migration point-query gap (ISSUE satellite
//! 4): between two ownership epochs the Morton re-sort moves bodies
//! across stripe boundaries, so a point query routed with the cached
//! (one-epoch-stale) owner map lands on a rank that no longer holds the
//! body. The engine must *forward* it to the current owner — never drop
//! it, never answer `Missing` for a body that exists — and the forward
//! count is pinned in the observability structural summary so a silent
//! regression (forwards vanishing because stale queries start being
//! dropped or double-answered) shows up as a counter diff.

use hot::models::plummer;
use msg::machine::Machine;
use query::{run, EngineConfig, FleetConfig, QueryKind};

fn migration_heavy_cfg() -> EngineConfig {
    EngineConfig {
        // Big timestep → lots of Morton churn → stale routes every tick.
        dt: 0.1,
        steps: 6,
        checkpoint_every: 3,
        fleet: FleetConfig {
            per_rank: 64,
            ..FleetConfig::default()
        },
        ..EngineConfig::default()
    }
}

#[test]
fn stale_routed_point_queries_are_forwarded_not_dropped() {
    let ranks = 8usize;
    let cfg = migration_heavy_cfg();
    let ics = plummer(256, 41);
    let (outs, trace) =
        msg::comm::run_observed(Machine::ideal(ranks as u32 + 2), ranks, move |comm| {
            run(comm, ics.clone(), &cfg)
        });

    let forwarded: u64 = outs.iter().map(|o| o.stats.forwarded).sum();
    assert!(
        forwarded > 0,
        "config failed to provoke any mid-migration point query — \
         the forwarding path went untested"
    );

    // The fix under regression: a forwarded query still resolves to its
    // origin exactly once. Before the forward phase existed, each stale
    // route became an unanswered (or spuriously Missing) query.
    let n = 256u64;
    for o in &outs {
        assert_eq!(o.stats.issued, o.stats.answered);
        assert_eq!(o.stats.unanswered, 0);
        assert_eq!(o.stats.dup_replies, 0);
        for r in &o.replies {
            if let QueryKind::Point { id } = r.kind {
                if r.at_step.is_none() && id < n {
                    assert!(
                        !matches!(r.answer, query::Answer::Missing),
                        "existing body {id} reported Missing — dropped mid-migration"
                    );
                }
            }
        }
    }

    // Pin the counter in the structural summary: the observability
    // surface must report exactly the forwards the engine performed.
    let summary = obs::export::structural_summary(&trace);
    let pinned = format!("counter query.forwarded {forwarded}");
    assert!(
        summary.contains(&pinned),
        "structural summary lost the forward count: wanted {pinned:?}"
    );
}

#[test]
fn forward_count_is_deterministic() {
    // Forwarding is a pure function of (ics, config) — replicated
    // ownership maps leave nothing for the schedule to perturb.
    let ranks = 8usize;
    let cfg = migration_heavy_cfg();
    let count = |seed: u64| -> Vec<u64> {
        let ics = plummer(256, seed);
        msg::comm::run_with(Machine::ideal(ranks as u32 + 2), ranks, move |comm| {
            run(comm, ics.clone(), &cfg)
        })
        .iter()
        .map(|o| o.stats.forwarded)
        .collect()
    };
    assert_eq!(count(41), count(41), "per-rank forward counts must repeat");
}
