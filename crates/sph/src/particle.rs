//! The SPH particle state.

/// One smoothed particle. Units are code units (G = 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SphParticle {
    pub pos: [f64; 3],
    pub vel: [f64; 3],
    pub mass: f64,
    pub id: u64,
    /// Smoothing length (kernel support is 2h).
    pub h: f64,
    /// Mass density from the SPH sum.
    pub rho: f64,
    /// Specific internal (thermal) energy.
    pub u: f64,
    /// Pressure and sound speed from the EOS.
    pub pres: f64,
    pub cs: f64,
    /// Hydrodynamic + gravitational acceleration.
    pub acc: [f64; 3],
    /// du/dt from PdV work, shocks and neutrino coupling.
    pub du_dt: f64,
    /// Specific neutrino energy (grey FLD variable).
    pub enu: f64,
    pub denu_dt: f64,
}

impl SphParticle {
    pub fn new(pos: [f64; 3], vel: [f64; 3], mass: f64, u: f64, id: u64) -> SphParticle {
        SphParticle {
            pos,
            vel,
            mass,
            id,
            h: 0.1,
            rho: 0.0,
            u,
            pres: 0.0,
            cs: 0.0,
            acc: [0.0; 3],
            du_dt: 0.0,
            enu: 0.0,
            denu_dt: 0.0,
        }
    }

    pub fn speed(&self) -> f64 {
        (self.vel[0] * self.vel[0] + self.vel[1] * self.vel[1] + self.vel[2] * self.vel[2]).sqrt()
    }

    pub fn radius(&self) -> f64 {
        (self.pos[0] * self.pos[0] + self.pos[1] * self.pos[1] + self.pos[2] * self.pos[2]).sqrt()
    }

    /// Specific angular momentum vector r × v.
    pub fn specific_angular_momentum(&self) -> [f64; 3] {
        let (r, v) = (self.pos, self.vel);
        [
            r[1] * v[2] - r[2] * v[1],
            r[2] * v[0] - r[0] * v[2],
            r[0] * v[1] - r[1] * v[0],
        ]
    }

    /// Polar angle from the rotation (z) axis, in radians `[0, π/2]`
    /// (folded about the equator).
    pub fn polar_angle(&self) -> f64 {
        let r = self.radius();
        if r == 0.0 {
            return 0.0;
        }
        (self.pos[2].abs() / r).acos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn angular_momentum_of_circular_orbit() {
        let mut p = SphParticle::new([1.0, 0.0, 0.0], [0.0, 2.0, 0.0], 1.0, 0.0, 0);
        let j = p.specific_angular_momentum();
        assert_eq!(j, [0.0, 0.0, 2.0]);
        p.vel = [0.0, 0.0, 1.0];
        assert_eq!(p.specific_angular_momentum(), [0.0, -1.0, 0.0]);
    }

    #[test]
    fn polar_angle_conventions() {
        let pole = SphParticle::new([0.0, 0.0, 1.0], [0.0; 3], 1.0, 0.0, 0);
        assert!(pole.polar_angle() < 1e-12);
        let equator = SphParticle::new([1.0, 0.0, 0.0], [0.0; 3], 1.0, 0.0, 0);
        assert!((equator.polar_angle() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // Southern hemisphere folds to the same angle.
        let south = SphParticle::new([0.0, 0.0, -1.0], [0.0; 3], 1.0, 0.0, 0);
        assert!(south.polar_angle() < 1e-12);
    }
}
