//! Rotating core collapse: the Figure 8 experiment.
//!
//! "The image shows the angular momentum distribution a 0.5° slice across
//! the core of a rotating supernova 40 ms after the core bounces. ...
//! the bulk of the angular momentum lies along the equator (the angular
//! momentum in a 15° cone along the poles is 2 orders of magnitude less
//! than that in the equator)."
//!
//! We set up a centrally condensed, rotating core with its pressure
//! reduced below hydrostatic support, evolve through collapse and the
//! nuclear-stiffening bounce, and histogram specific angular momentum
//! against polar angle.

use crate::eos::Eos;
use crate::integrate::{SphConfig, SphSimulation};
use crate::particle::SphParticle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the collapse problem (code units: G = M = R = 1).
#[derive(Debug, Clone, Copy)]
pub struct CollapseSetup {
    pub n_particles: usize,
    /// Solid-body angular velocity about z.
    pub omega: f64,
    /// Fraction of hydrostatic pressure support at t = 0 (< 1 collapses).
    pub pressure_deficit: f64,
    /// Stiffening density (the "nuclear" density in code units).
    pub rho_nuc: f64,
    pub seed: u64,
}

impl Default for CollapseSetup {
    fn default() -> Self {
        CollapseSetup {
            n_particles: 1000,
            omega: 0.3,
            pressure_deficit: 0.35,
            rho_nuc: 50.0,
            seed: 42,
        }
    }
}

/// Build the initial rotating core: an n = 1-ish centrally condensed
/// sphere (ρ ∝ sinc(πr) truncated) with solid-body rotation and a cold
/// polytropic pressure scaled by `pressure_deficit`.
pub fn rotating_core(setup: &CollapseSetup) -> (Vec<SphParticle>, SphConfig) {
    let mut rng = SmallRng::seed_from_u64(setup.seed);
    let n = setup.n_particles;
    let mut parts = Vec::with_capacity(n);
    let m = 1.0 / n as f64;
    for i in 0..n {
        // Sample ρ(r) ∝ sin(πr)/(πr) on r ∈ (0, 1) by rejection against
        // the uniform-ball radial density.
        let r = loop {
            let r: f64 = rng.gen::<f64>().cbrt();
            let w = (std::f64::consts::PI * r).sin() / (std::f64::consts::PI * r);
            if rng.gen::<f64>() < w {
                break r;
            }
        };
        let costh = rng.gen_range(-1.0..1.0f64);
        let sinth = (1.0 - costh * costh).sqrt();
        let phi = rng.gen::<f64>() * std::f64::consts::TAU;
        let pos = [r * sinth * phi.cos(), r * sinth * phi.sin(), r * costh];
        let vel = [-setup.omega * pos[1], setup.omega * pos[0], 0.0];
        parts.push(SphParticle::new(pos, vel, m, 1e-4, i as u64));
    }
    // Cold pressure: K chosen so the Γ=4/3 polytrope would roughly
    // support the configuration, then reduced by the deficit.
    let k = 0.44 * setup.pressure_deficit;
    let cfg = SphConfig {
        eos: Eos::collapse(k, setup.rho_nuc),
        gravity_theta: Some(0.7),
        neutrino: Some(crate::neutrino::NeutrinoConfig {
            c_light: 20.0,
            kappa0: 50.0,
            emit0: 0.05,
        }),
        dt_max: 0.02,
        ..Default::default()
    };
    (parts, cfg)
}

/// Outcome of a collapse run.
#[derive(Debug, Clone)]
pub struct CollapseResult {
    /// Peak central density reached (≫ initial central density at
    /// bounce).
    pub peak_density: f64,
    /// Time of peak density.
    pub bounce_time: f64,
    /// Mean specific angular momentum |j_z| in polar-angle bins
    /// (equator = last bin), measured at the end.
    pub j_by_angle: Vec<f64>,
    /// Mean |j_z| within 15° of the pole / within 15° of the equator.
    pub pole_to_equator: f64,
    pub steps: u64,
}

/// Run the collapse to just past bounce and measure the Figure 8
/// angular-momentum distribution.
pub fn run_collapse(setup: &CollapseSetup, max_steps: u64) -> CollapseResult {
    let (parts, cfg) = rotating_core(setup);
    let mut sim = SphSimulation::new(parts, cfg);
    let mut peak = sim.max_density();
    let mut bounce_time = 0.0;
    let mut post_bounce = 0u64;
    while sim.steps < max_steps {
        sim.step();
        let rho = sim.max_density();
        if rho > peak {
            peak = rho;
            bounce_time = sim.time;
            post_bounce = 0;
        } else if peak > 4.0 * setup.rho_nuc {
            // Past bounce: run a little longer ("40 ms after"), then stop.
            post_bounce += 1;
            if post_bounce > 10 {
                break;
            }
        }
    }
    let j_by_angle = angular_momentum_histogram(&sim.parts, 9);
    let pole_to_equator = pole_equator_ratio(&sim.parts);
    CollapseResult {
        peak_density: peak,
        bounce_time,
        j_by_angle,
        pole_to_equator,
        steps: sim.steps,
    }
}

/// Mean |j_z| in `bins` equal polar-angle bins from pole (bin 0) to
/// equator (last bin).
pub fn angular_momentum_histogram(parts: &[SphParticle], bins: usize) -> Vec<f64> {
    let mut sums = vec![0.0; bins];
    let mut counts = vec![0usize; bins];
    for p in parts {
        let theta = p.polar_angle(); // 0 at pole, π/2 at equator
        let b = ((theta / std::f64::consts::FRAC_PI_2) * bins as f64) as usize;
        let b = b.min(bins - 1);
        sums[b] += p.specific_angular_momentum()[2].abs();
        counts[b] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// Mean |j_z| within 15° of the pole divided by the equatorial value.
pub fn pole_equator_ratio(parts: &[SphParticle]) -> f64 {
    let deg15 = 15.0f64.to_radians();
    let mut pole = (0.0, 0usize);
    let mut eq = (0.0, 0usize);
    for p in parts {
        let theta = p.polar_angle();
        let jz = p.specific_angular_momentum()[2].abs();
        if theta < deg15 {
            pole.0 += jz;
            pole.1 += 1;
        } else if theta > std::f64::consts::FRAC_PI_2 - deg15 {
            eq.0 += jz;
            eq.1 += 1;
        }
    }
    if pole.1 == 0 || eq.1 == 0 || eq.0 == 0.0 {
        return f64::NAN;
    }
    (pole.0 / pole.1 as f64) / (eq.0 / eq.1 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_core_is_centrally_condensed_and_rotating() {
        let setup = CollapseSetup {
            n_particles: 2000,
            ..Default::default()
        };
        let (parts, _) = rotating_core(&setup);
        let inner = parts.iter().filter(|p| p.radius() < 0.5).count();
        // The sinc (n = 1 polytrope) profile encloses ~31.8% of the mass
        // inside half the radius — 2.5x the uniform ball's 12.5%.
        let frac = inner as f64 / 2000.0;
        assert!((frac - 0.318).abs() < 0.05, "inner fraction {frac}");
        // Solid-body: j_z = Ω (x²+y²).
        for p in parts.iter().take(50) {
            let expect = setup.omega * (p.pos[0].powi(2) + p.pos[1].powi(2));
            let got = p.specific_angular_momentum()[2];
            assert!((got - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn initial_j_already_favors_equator() {
        // Solid-body rotation: j ∝ sin²θ, so pole/equator starts small.
        let (parts, _) = rotating_core(&CollapseSetup {
            n_particles: 4000,
            ..Default::default()
        });
        let ratio = pole_equator_ratio(&parts);
        assert!(ratio < 0.2, "pole/equator {ratio}");
    }

    #[test]
    fn histogram_increases_toward_equator() {
        let (parts, _) = rotating_core(&CollapseSetup {
            n_particles: 4000,
            ..Default::default()
        });
        let h = angular_momentum_histogram(&parts, 6);
        assert_eq!(h.len(), 6);
        assert!(h[5] > h[0] * 5.0, "{h:?}");
    }

    #[test]
    #[ignore = "slow: full collapse through bounce (~2 min); run with --ignored"]
    fn collapse_bounces_at_nuclear_density() {
        let setup = CollapseSetup {
            n_particles: 600,
            ..Default::default()
        };
        let res = run_collapse(&setup, 600);
        let (parts0, _) = rotating_core(&setup);
        let rho0 = {
            let mut sim_parts = parts0;
            let nt = crate::neighbors::NeighborTree::build(&sim_parts);
            crate::density::compute_density(&mut sim_parts, &nt);
            sim_parts.iter().map(|p| p.rho).fold(0.0, f64::max)
        };
        assert!(
            res.peak_density > 10.0 * rho0,
            "no collapse: {} vs initial {rho0}",
            res.peak_density
        );
        assert!(res.pole_to_equator < 0.15, "ratio {}", res.pole_to_equator);
    }
}
