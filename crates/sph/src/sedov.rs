//! Sedov–Taylor point explosion: the standard strong-shock validation
//! for the SPH machinery (kernel, viscosity, energy equation).
//!
//! Energy `E` deposited at the center of a cold uniform gas of density
//! ρ drives a self-similar blast wave with shock radius
//! `R(t) = ξ (E t² / ρ)^{1/5}` — so `R ∝ t^{2/5}`, the exponent we test.

use crate::eos::Eos;
use crate::integrate::{SphConfig, SphSimulation};
use crate::particle::SphParticle;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Build the Sedov setup: `n` particles of unit total mass in a uniform
/// ball of radius 1, cold except for `e_blast` injected into the
/// particles within `r_inject` of the center.
pub fn sedov_setup(
    n: usize,
    e_blast: f64,
    r_inject: f64,
    seed: u64,
) -> (Vec<SphParticle>, SphConfig) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parts = Vec::with_capacity(n);
    for i in 0..n {
        let r = rng.gen::<f64>().cbrt();
        let costh = rng.gen_range(-1.0..1.0f64);
        let sinth = (1.0 - costh * costh).sqrt();
        let phi = rng.gen::<f64>() * std::f64::consts::TAU;
        parts.push(SphParticle::new(
            [r * sinth * phi.cos(), r * sinth * phi.sin(), r * costh],
            [0.0; 3],
            1.0 / n as f64,
            1e-6, // cold background
            i as u64,
        ));
    }
    // Inject the blast energy uniformly into the central particles.
    let central: Vec<usize> = parts
        .iter()
        .enumerate()
        .filter(|(_, p)| p.radius() < r_inject)
        .map(|(i, _)| i)
        .collect();
    assert!(!central.is_empty(), "no particles inside r_inject");
    let per = e_blast / (central.len() as f64 / n as f64); // per unit mass
    for i in central {
        parts[i].u = per / n as f64 / parts[i].mass; // = per (equal masses)
    }
    let cfg = SphConfig {
        eos: Eos::GammaLaw { gamma: 5.0 / 3.0 },
        gravity_theta: None, // pure hydro
        neutrino: None,
        dt_max: 0.002,
        cfl: 0.15, // strong shock: keep the energy equation accurate
        ..Default::default()
    };
    (parts, cfg)
}

/// Shock radius estimate: the thermal-energy-weighted mean radius —
/// the hot shell carries nearly all of the entropy, so this tracks it
/// from the injection region outward.
pub fn shock_radius(parts: &[SphParticle]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for p in parts {
        let w = p.mass * p.u;
        num += w * p.radius();
        den += w;
    }
    num / den
}

/// Run the blast and sample `(t, R_shock)` at the requested times.
pub fn run_sedov(n: usize, e_blast: f64, sample_times: &[f64], seed: u64) -> Vec<(f64, f64)> {
    let (parts, cfg) = sedov_setup(n, e_blast, 0.2, seed);
    let mut sim = SphSimulation::new(parts, cfg);
    let mut out = Vec::new();
    for &t in sample_times {
        while sim.time < t && sim.steps < 10_000 {
            sim.step();
        }
        out.push((sim.time, shock_radius(&sim.parts)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blast_expands_and_conserves_energy() {
        let (parts, cfg) = sedov_setup(1200, 1.0, 0.2, 7);
        let mut sim = SphSimulation::new(parts, cfg);
        let (ke0, th0, _) = sim.energies();
        let e0 = ke0 + th0;
        let r0 = shock_radius(&sim.parts);
        for _ in 0..30 {
            sim.step();
        }
        let r1 = shock_radius(&sim.parts);
        assert!(r1 > r0 * 1.2, "shock did not expand: {r0} -> {r1}");
        let (ke1, th1, _) = sim.energies();
        let e1 = ke1 + th1;
        // The pairwise-symmetric form conserves energy exactly in the
        // continuum limit, but adaptive smoothing lengths (no grad-h
        // terms) across a 1e5 temperature contrast cost ~15% during the
        // initial blast transient — the known behaviour of this era's
        // SPH formulation. The self-similar exponent test below is the
        // physics check.
        assert!(((e1 - e0) / e0).abs() < 0.25, "energy drift: {e0} -> {e1}");
        // Thermal energy converts to kinetic as the blast does work.
        assert!(ke1 > ke0);
    }

    #[test]
    fn shock_radius_scales_like_t_to_two_fifths() {
        // Sample R(t) at two times a factor 3 apart: the exponent
        // log(R2/R1)/log(t2/t1) should be near 0.4. At these particle
        // counts the shell is a few kernels thick, so allow a wide band.
        let samples = run_sedov(1500, 1.0, &[0.03, 0.09], 3);
        let (t1, r1) = samples[0];
        let (t2, r2) = samples[1];
        assert!(t2 > t1 * 2.5);
        let exponent = (r2 / r1).ln() / (t2 / t1).ln();
        assert!(
            exponent > 0.2 && exponent < 0.65,
            "R ~ t^{exponent} (expected ~0.4): R({t1}) = {r1}, R({t2}) = {r2}"
        );
    }

    #[test]
    fn blast_is_spherical() {
        let (parts, cfg) = sedov_setup(1200, 1.0, 0.2, 11);
        let mut sim = SphSimulation::new(parts, cfg);
        for _ in 0..25 {
            sim.step();
        }
        // The hot shell's energy-weighted center stays at the origin.
        let mut com = [0.0; 3];
        let mut den = 0.0;
        for p in &sim.parts {
            let w = p.mass * p.u;
            den += w;
            for d in 0..3 {
                com[d] += w * p.pos[d];
            }
        }
        let r_shell = shock_radius(&sim.parts);
        for c in &mut com {
            *c /= den;
        }
        let off = (com[0] * com[0] + com[1] * com[1] + com[2] * com[2]).sqrt();
        // The ~10 injected particles start with a randomly off-center
        // centroid (~0.08 for this seed); the blast must not amplify it.
        assert!(
            off < 0.5 * r_shell,
            "blast off-center by {off} (shell {r_shell})"
        );
    }
}
