//! Grey flux-limited diffusion (FLD) neutrino transport on particles.
//!
//! The paper (§4.4): "we have been able to include both the essential
//! physics and a flux-limited diffusion algorithm to model the neutrino
//! transport". We implement the standard grey FLD scheme on the SPH
//! discretization:
//!
//! * each particle carries a specific neutrino energy `enu`;
//! * diffusion between neighbours uses the Brookshaw SPH Laplacian with
//!   a harmonic-mean diffusivity `D = c·λ(R)/(κρ)`;
//! * the Levermore–Pomraning flux limiter `λ(R) = (2+R)/(6+3R+R²)`
//!   interpolates between the diffusion limit (λ → 1/3 for R → 0) and
//!   free streaming (λ → 1/R so |F| → cE);
//! * emission/absorption couple `enu` to the thermal energy with a
//!   κ ∝ ρT⁶-style source (a grey stand-in for the pair processes).

use crate::kernel;
use crate::neighbors::NeighborTree;
use crate::particle::SphParticle;

/// Transport parameters (code units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeutrinoConfig {
    /// Effective speed of light.
    pub c_light: f64,
    /// Opacity scale: κ = kappa0 · ρ.
    pub kappa0: f64,
    /// Emission rate scale: du/dt = −emit0 · ρ · u³ (grey T⁶ stand-in
    /// with u ∝ T²... the steep nonlinearity is what matters).
    pub emit0: f64,
}

impl Default for NeutrinoConfig {
    fn default() -> Self {
        NeutrinoConfig {
            c_light: 10.0,
            kappa0: 100.0,
            emit0: 0.1,
        }
    }
}

/// Levermore–Pomraning flux limiter.
#[inline]
pub fn flux_limiter(r: f64) -> f64 {
    debug_assert!(r >= 0.0);
    (2.0 + r) / (6.0 + 3.0 * r + r * r)
}

/// The dimensionless FLD ratio R = |∇E| / (κρE) for one pair, estimated
/// from the pairwise gradient.
#[inline]
fn fld_r(de: f64, dr: f64, kappa_rho: f64, e_mean: f64) -> f64 {
    if e_mean <= 0.0 || kappa_rho <= 0.0 || dr <= 0.0 {
        return 0.0;
    }
    (de / dr).abs() / (kappa_rho * e_mean)
}

/// Compute `denu_dt` (diffusion + emission − reabsorption) and the
/// matching `du_dt` contribution. Pairwise-antisymmetric diffusion ⇒
/// total (thermal + neutrino) energy is conserved up to the free-
/// streaming losses at the surface, which here stay in `enu`.
pub fn neutrino_transport(parts: &mut [SphParticle], nt: &NeighborTree, cfg: &NeutrinoConfig) {
    let n = parts.len();
    let mut denu = vec![0.0f64; n];
    let mut du = vec![0.0f64; n];
    let h_max = parts.iter().map(|p| p.h).fold(0.0f64, f64::max);
    // Diffusion (Brookshaw form, harmonic-mean D, flux-limited).
    for i in 0..n {
        let pi = parts[i];
        if pi.rho <= 0.0 {
            continue;
        }
        for j in nt.ball(pi.pos, kernel::SUPPORT * 0.5 * (pi.h + h_max)) {
            if j <= i {
                continue;
            }
            let pj = parts[j];
            if pj.rho <= 0.0 {
                continue;
            }
            let dx = [
                pi.pos[0] - pj.pos[0],
                pi.pos[1] - pj.pos[1],
                pi.pos[2] - pj.pos[2],
            ];
            let r = (dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2]).sqrt();
            let hbar = 0.5 * (pi.h + pj.h);
            if r >= kernel::SUPPORT * hbar || r == 0.0 {
                continue;
            }
            let de = pi.enu - pj.enu;
            let kr_i = cfg.kappa0 * pi.rho * pi.rho;
            let kr_j = cfg.kappa0 * pj.rho * pj.rho;
            let e_mean = 0.5 * (pi.enu + pj.enu);
            let lam_i = flux_limiter(fld_r(de, r, kr_i, e_mean));
            let lam_j = flux_limiter(fld_r(de, r, kr_j, e_mean));
            let d_i = cfg.c_light * lam_i / kr_i.max(1e-30);
            let d_j = cfg.c_light * lam_j / kr_j.max(1e-30);
            let d_harm = 2.0 * d_i * d_j / (d_i + d_j + 1e-300);
            let f = kernel::brookshaw_f(r, hbar);
            // dE_i/dt += m_j/(ρ_i ρ_j) · D · (E_j − E_i) · 2F (Brookshaw).
            let flux = 2.0 * d_harm * f * (pj.enu - pi.enu) / (pi.rho * pj.rho);
            denu[i] += pj.mass * pi.rho * flux / pi.rho;
            denu[j] -= pi.mass * pj.rho * flux / pj.rho;
        }
    }
    // Emission / thermal coupling.
    for (i, p) in parts.iter().enumerate() {
        let emit = cfg.emit0 * p.rho * p.u.max(0.0).powi(3);
        denu[i] += emit;
        du[i] -= emit;
    }
    for (p, (de, duv)) in parts.iter_mut().zip(denu.into_iter().zip(du)) {
        p.denu_dt = de;
        p.du_dt += duv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::compute_density;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gas_cube(n: usize, seed: u64) -> Vec<SphParticle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                SphParticle::new(
                    [rng.gen(), rng.gen(), rng.gen()],
                    [0.0; 3],
                    1.0 / n as f64,
                    0.0,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn limiter_has_correct_asymptotes() {
        assert!((flux_limiter(0.0) - 1.0 / 3.0).abs() < 1e-12);
        // Free streaming: λ(R)·R → 1 as R → ∞.
        for r in [100.0, 1000.0, 1e6] {
            let prod = flux_limiter(r) * r;
            assert!(prod < 1.0 && prod > 0.9, "λR = {prod} at R = {r}");
        }
        // Monotone decreasing.
        let mut last = flux_limiter(0.0);
        for i in 1..100 {
            let l = flux_limiter(i as f64 * 0.5);
            assert!(l < last);
            last = l;
        }
    }

    #[test]
    fn diffusion_conserves_neutrino_energy() {
        let mut parts = gas_cube(1000, 1);
        let nt = NeighborTree::build(&parts);
        compute_density(&mut parts, &nt);
        let mut rng = SmallRng::seed_from_u64(2);
        for p in &mut parts {
            p.enu = rng.gen::<f64>();
        }
        let cfg = NeutrinoConfig {
            emit0: 0.0, // diffusion only
            ..Default::default()
        };
        neutrino_transport(&mut parts, &nt, &cfg);
        let total_rate: f64 = parts.iter().map(|p| p.mass * p.denu_dt).sum();
        let scale: f64 = parts.iter().map(|p| p.mass * p.denu_dt.abs()).sum();
        assert!(
            total_rate.abs() < 1e-10 * scale.max(1e-30),
            "dE/dt = {total_rate} (scale {scale})"
        );
    }

    #[test]
    fn spike_diffuses_outward() {
        let mut parts = gas_cube(1500, 3);
        let nt = NeighborTree::build(&parts);
        compute_density(&mut parts, &nt);
        // Energy spike near the center.
        for p in &mut parts {
            let d2 = (p.pos[0] - 0.5).powi(2) + (p.pos[1] - 0.5).powi(2) + (p.pos[2] - 0.5).powi(2);
            p.enu = if d2 < 0.01 { 1.0 } else { 0.0 };
        }
        let cfg = NeutrinoConfig {
            emit0: 0.0,
            ..Default::default()
        };
        neutrino_transport(&mut parts, &nt, &cfg);
        // Spike particles lose, their neighbours gain.
        let spike_rate: f64 = parts
            .iter()
            .filter(|p| p.enu > 0.5)
            .map(|p| p.denu_dt)
            .sum();
        let halo_rate: f64 = parts
            .iter()
            .filter(|p| {
                let d2 =
                    (p.pos[0] - 0.5).powi(2) + (p.pos[1] - 0.5).powi(2) + (p.pos[2] - 0.5).powi(2);
                p.enu == 0.0 && d2 < 0.04
            })
            .map(|p| p.denu_dt)
            .sum();
        assert!(spike_rate < 0.0, "spike not losing energy: {spike_rate}");
        assert!(halo_rate > 0.0, "halo not gaining energy: {halo_rate}");
    }

    #[test]
    fn emission_moves_energy_from_thermal_to_neutrinos() {
        let mut parts = gas_cube(500, 4);
        let nt = NeighborTree::build(&parts);
        compute_density(&mut parts, &nt);
        for p in &mut parts {
            p.u = 2.0;
            p.du_dt = 0.0;
        }
        let cfg = NeutrinoConfig::default();
        neutrino_transport(&mut parts, &nt, &cfg);
        for p in &parts {
            assert!(p.du_dt < 0.0, "thermal energy not radiating");
            assert!(p.denu_dt > 0.0);
            // Energy balance per particle: emission contribution equal
            // and opposite (diffusion nets out only globally).
        }
        // Hotter gas radiates much faster (steep nonlinearity).
        let mut cold = parts.clone();
        for p in &mut cold {
            p.u = 1.0;
            p.du_dt = 0.0;
            p.enu = 0.0;
            p.denu_dt = 0.0;
        }
        neutrino_transport(&mut cold, &nt, &cfg);
        let hot_rate: f64 = parts.iter().map(|p| -p.du_dt).sum();
        let cold_rate: f64 = cold.iter().map(|p| -p.du_dt).sum();
        assert!(
            hot_rate > 6.0 * cold_rate,
            "hot {hot_rate} vs cold {cold_rate}"
        );
    }

    #[test]
    fn dense_gas_diffuses_slower() {
        // Optically thick vs thin: raise density → smaller D → smaller
        // flux for the same gradient.
        let mut thin = gas_cube(800, 5);
        let nt_thin = NeighborTree::build(&thin);
        compute_density(&mut thin, &nt_thin);
        let mut thick = thin.clone();
        for p in &mut thick {
            p.rho *= 10.0;
        }
        for parts in [&mut thin, &mut thick] {
            for p in parts.iter_mut() {
                p.enu = p.pos[0]; // uniform gradient
            }
        }
        let cfg = NeutrinoConfig {
            emit0: 0.0,
            ..Default::default()
        };
        let nt_thick = NeighborTree::build(&thick);
        neutrino_transport(&mut thin, &nt_thin, &cfg);
        neutrino_transport(&mut thick, &nt_thick, &cfg);
        let rate = |ps: &[SphParticle]| -> f64 { ps.iter().map(|p| p.denu_dt.abs()).sum() };
        assert!(
            rate(&thin) > 5.0 * rate(&thick),
            "thin {} vs thick {}",
            rate(&thin),
            rate(&thick)
        );
    }
}
