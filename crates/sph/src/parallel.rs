//! Distributed SPH over the message-passing layer (§4.4: "For our 1
//! million particle simulations on 128 processors...").
//!
//! The decomposition mirrors the treecode's: particles are sample-sorted
//! by Morton key across ranks; each rank then imports **ghost**
//! particles — remote particles within interaction range of its domain
//! box — computes density, EOS and hydrodynamic forces locally
//! (gravity is handled by `hot::parallel` in a production stepper), and
//! returns its shard. Ghosts contribute to sums but are not updated.

use crate::density::compute_density;
use crate::eos::Eos;
use crate::forces::{apply_eos, hydro_forces, Viscosity};
use crate::kernel;
use crate::neighbors::NeighborTree;
use crate::particle::SphParticle;
use msg::Comm;

impl msg::payload::FixedWire for SphParticle {
    // pos, vel (48) + mass, id (16) + h, rho, u, pres, cs (40)
    // + acc (24) + du_dt, enu, denu_dt (24)
    const WIRE: usize = 152;
}

/// Wire/memory footprint of one particle, for the compute-charge
/// occupancy model.
const PARTICLE_BYTES: usize = <SphParticle as msg::payload::FixedWire>::WIRE;

/// Axis-aligned bounds of a particle set, grown by `pad`.
fn bounds(parts: &[SphParticle], pad: f64) -> [f64; 6] {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in parts {
        for d in 0..3 {
            lo[d] = lo[d].min(p.pos[d]);
            hi[d] = hi[d].max(p.pos[d]);
        }
    }
    [
        lo[0] - pad,
        lo[1] - pad,
        lo[2] - pad,
        hi[0] + pad,
        hi[1] + pad,
        hi[2] + pad,
    ]
}

fn in_box(p: &SphParticle, b: &[f64; 6]) -> bool {
    (0..3).all(|d| p.pos[d] >= b[d] && p.pos[d] <= b[d + 3])
}

/// One distributed density + hydro-force evaluation.
///
/// Returns this rank's (possibly migrated) shard with `rho`, `pres`,
/// `cs`, `acc` and `du_dt` filled in, exactly as the serial pipeline
/// would have computed them over the union of all shards.
pub fn distributed_hydro(
    comm: &mut Comm,
    parts: Vec<SphParticle>,
    eos: &Eos,
    visc: &Viscosity,
    h_max_hint: f64,
) -> Vec<SphParticle> {
    // 1. Rebalance by Morton key (reusing the hot machinery via plain
    //    spatial sort on interleaved bits of the global box).
    comm.span_enter("sph.rebalance");
    let all_bounds = {
        let local = if parts.is_empty() {
            vec![
                f64::INFINITY,
                f64::INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
            ]
        } else {
            let b = bounds(&parts, 0.0);
            b.to_vec()
        };
        comm.allreduce(local, |a, b| {
            vec![
                a[0].min(b[0]),
                a[1].min(b[1]),
                a[2].min(b[2]),
                a[3].max(b[3]),
                a[4].max(b[4]),
                a[5].max(b[5]),
            ]
        })
    };
    let bbox = hot::morton::BBox::from_lo_hi(
        [all_bounds[0], all_bounds[1], all_bounds[2]],
        [all_bounds[3], all_bounds[4], all_bounds[5]],
    );
    let mut mine =
        msg::sort::sample_sort_weighted(comm, parts, |p| bbox.key_of(p.pos).0, |_| 1.0, 64);
    comm.span_exit("sph.rebalance");

    // 2. Ghost exchange helper: ship my particles lying inside other
    //    ranks' padded boxes.
    let exchange_ghosts = |comm: &mut Comm, mine: &[SphParticle], pad: f64| -> Vec<SphParticle> {
        comm.span_enter("sph.ghosts");
        let my_box = if mine.is_empty() {
            vec![0.0; 6]
        } else {
            bounds(mine, pad).to_vec()
        };
        let boxes = comm.allgather(my_box);
        let mut outgoing: Vec<Vec<SphParticle>> = (0..comm.size()).map(|_| Vec::new()).collect();
        for (r, bx) in boxes.iter().enumerate() {
            if r == comm.rank() || bx.iter().all(|v| *v == 0.0) {
                continue;
            }
            let b = [bx[0], bx[1], bx[2], bx[3], bx[4], bx[5]];
            for p in mine {
                if in_box(p, &b) {
                    outgoing[r].push(*p);
                }
            }
        }
        let ghosts: Vec<SphParticle> = comm.alltoallv(outgoing).into_iter().flatten().collect();
        comm.span_exit("sph.ghosts");
        ghosts
    };

    let n_own = mine.len();

    // 3. Phase 1 — density and EOS for OWNED particles, with position
    //    ghosts completing the boundary neighbourhoods. If the adaptive
    //    h outgrows the pad, widen and redo.
    let mut pad = kernel::SUPPORT * h_max_hint * 1.3;
    comm.span_enter("sph.density");
    for attempt in 0..4 {
        let ghosts = exchange_ghosts(comm, &mine, pad);
        let mut work: Vec<SphParticle> = Vec::with_capacity(n_own + ghosts.len());
        work.extend(mine.iter().copied());
        work.extend(ghosts);
        if !work.is_empty() {
            let nt = NeighborTree::build(&work);
            compute_density(&mut work, &nt);
            apply_eos(&mut work, eos);
            // Charge the density pass to the virtual clock with the
            // §4.4 cost model: ~120 neighbours/particle, density+EOS is
            // the cheaper ~2/5 of the ~250 flops per interaction.
            let flops = work.len() as f64 * 120.0 * 100.0;
            comm.compute(flops, (work.len() * PARTICLE_BYTES) as f64);
            comm.obs_count("sph.interactions", (work.len() as u64).saturating_mul(120));
        }
        work.truncate(n_own);
        mine = work;
        let h_max_local = mine.iter().map(|p| p.h).fold(0.0f64, f64::max);
        let h_max = comm.allreduce(h_max_local, |a, b| a.max(*b));
        let needed = kernel::SUPPORT * h_max * 1.05;
        let done = comm.allreduce(u8::from(needed <= pad), |a, b| (*a).min(*b));
        if done == 1 || attempt == 3 {
            pad = needed.max(pad);
            break;
        }
        pad = needed * 1.3;
    }
    comm.span_exit("sph.density");

    // 4. Phase 2 — forces, with ghosts now carrying their owners'
    //    converged rho / pres / cs / h.
    comm.span_enter("sph.forces");
    let ghosts = exchange_ghosts(comm, &mine, pad);
    let mut work: Vec<SphParticle> = Vec::with_capacity(n_own + ghosts.len());
    work.extend(mine.iter().copied());
    work.extend(ghosts);
    if work.is_empty() {
        comm.span_exit("sph.forces");
        return Vec::new();
    }
    let nt = NeighborTree::build(&work);
    hydro_forces(&mut work, &nt, visc);
    // Force pass: the remaining ~3/5 of the per-interaction flops.
    let flops = work.len() as f64 * 120.0 * 150.0;
    comm.compute(flops, (work.len() * PARTICLE_BYTES) as f64);
    comm.obs_count("sph.interactions", (work.len() as u64).saturating_mul(120));
    work.truncate(n_own);
    comm.span_exit("sph.forces");
    work
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    pub(crate) fn gas_ball(n: usize, seed: u64) -> Vec<SphParticle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let r = rng.gen::<f64>().cbrt();
                let costh = rng.gen_range(-1.0..1.0f64);
                let sinth = (1.0 - costh * costh).sqrt();
                let phi = rng.gen::<f64>() * std::f64::consts::TAU;
                let mut p = SphParticle::new(
                    [r * sinth * phi.cos(), r * sinth * phi.sin(), r * costh],
                    [
                        rng.gen_range(-0.5..0.5),
                        rng.gen_range(-0.5..0.5),
                        rng.gen_range(-0.5..0.5),
                    ],
                    1.0 / n as f64,
                    1.0,
                    i as u64,
                );
                p.h = 0.2;
                p
            })
            .collect()
    }

    fn serial_reference(all: &[SphParticle]) -> HashMap<u64, SphParticle> {
        let mut work = all.to_vec();
        let eos = Eos::GammaLaw { gamma: 5.0 / 3.0 };
        let nt = NeighborTree::build(&work);
        compute_density(&mut work, &nt);
        apply_eos(&mut work, &eos);
        hydro_forces(&mut work, &nt, &Viscosity::default());
        work.into_iter().map(|p| (p.id, p)).collect()
    }

    #[test]
    fn distributed_hydro_matches_serial() {
        let all = gas_ball(600, 5);
        let serial = serial_reference(&all);
        for ranks in [1usize, 2, 4] {
            let shards = msg::run(ranks, |c| {
                let mine: Vec<SphParticle> = all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % c.size() == c.rank())
                    .map(|(_, p)| *p)
                    .collect();
                distributed_hydro(
                    c,
                    mine,
                    &Eos::GammaLaw { gamma: 5.0 / 3.0 },
                    &Viscosity::default(),
                    0.25,
                )
            });
            let total: usize = shards.iter().map(Vec::len).sum();
            assert_eq!(total, 600, "{ranks} ranks: lost particles");
            for shard in &shards {
                for p in shard {
                    let s = &serial[&p.id];
                    assert!(
                        (p.rho - s.rho).abs() < 1e-9 * s.rho,
                        "{ranks} ranks: rho {} vs {}",
                        p.rho,
                        s.rho
                    );
                    for d in 0..3 {
                        assert!(
                            (p.acc[d] - s.acc[d]).abs() < 1e-6 * (1.0 + s.acc[d].abs()),
                            "{ranks} ranks: acc[{d}] {} vs {}",
                            p.acc[d],
                            s.acc[d]
                        );
                    }
                    assert!((p.du_dt - s.du_dt).abs() < 1e-6 * (1.0 + s.du_dt.abs()));
                }
            }
        }
    }

    #[test]
    fn ghosts_really_cross_rank_boundaries() {
        // With 2 ranks splitting a ball along Morton order, the boundary
        // region needs ghosts; run with an artificially tiny pad and
        // check the answers DEGRADE (proving ghosts matter).
        let all = gas_ball(400, 9);
        let serial = serial_reference(&all);
        let shards = msg::run(2, |c| {
            let mine: Vec<SphParticle> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| i % c.size() == c.rank())
                .map(|(_, p)| *p)
                .collect();
            distributed_hydro(
                c,
                mine,
                &Eos::GammaLaw { gamma: 5.0 / 3.0 },
                &Viscosity::default(),
                0.001, // pad far below the true interaction range
            )
        });
        let mut worst: f64 = 0.0;
        for shard in &shards {
            for p in shard {
                let s = &serial[&p.id];
                worst = worst.max((p.rho - s.rho).abs() / s.rho);
            }
        }
        assert!(
            worst > 1e-6,
            "tiny ghost pad should have broken boundary densities (worst {worst})"
        );
    }
}

/// A gravity acceleration keyed by particle id, routed between the
/// gravity decomposition and the SPH decomposition through id-hashed
/// home ranks.
#[derive(Debug, Clone, Copy)]
struct GravAcc {
    id: u64,
    acc: [f64; 3],
}

impl msg::payload::FixedWire for GravAcc {
    const WIRE: usize = 32;
}

/// A fully distributed SPH simulation: hydrodynamics via ghost exchange,
/// self-gravity via the distributed HOT traversal, global CFL timestep.
pub struct DistributedSph {
    pub shard: Vec<SphParticle>,
    pub eos: Eos,
    pub visc: Viscosity,
    pub theta: f64,
    pub cfl: f64,
    pub dt_max: f64,
    pub time: f64,
    h_hint: f64,
}

impl DistributedSph {
    /// Set up from this rank's initial shard and compute the first RHS.
    pub fn new(comm: &mut Comm, shard: Vec<SphParticle>, eos: Eos, theta: f64) -> DistributedSph {
        let mut sim = DistributedSph {
            shard,
            eos,
            visc: Viscosity::default(),
            theta,
            cfl: 0.3,
            dt_max: 0.02,
            time: 0.0,
            h_hint: 0.2,
        };
        sim.compute_rhs(comm);
        sim
    }

    /// Hydro + gravity RHS across the world; re-shards `self.shard`.
    pub fn compute_rhs(&mut self, comm: &mut Comm) {
        // Hydro (density, EOS, pressure/viscosity forces, re-sharding).
        let parts = std::mem::take(&mut self.shard);
        let mut parts = distributed_hydro(comm, parts, &self.eos, &self.visc, self.h_hint);
        self.h_hint = comm
            .allreduce(parts.iter().map(|p| p.h).fold(0.0f64, f64::max), |a, b| {
                a.max(*b)
            })
            .max(1e-6);
        // Gravity: distributed treecode over the same particles (its own
        // decomposition), results routed home by id hash.
        let softening = 0.5 * self.h_hint;
        let bodies: Vec<hot::tree::Body> = parts
            .iter()
            .map(|p| hot::tree::Body {
                pos: p.pos,
                vel: [0.0; 3],
                mass: p.mass,
                id: p.id,
                work: 1.0,
            })
            .collect();
        let cfg = hot::parallel::ParallelConfig {
            gravity: hot::gravity::GravityConfig {
                theta: self.theta,
                eps: softening,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = hot::parallel::parallel_accelerations(comm, bodies, &cfg);
        // Route (id, acc) to home rank id % P; request my ids from homes.
        let size = comm.size();
        let mut grav_out: Vec<Vec<GravAcc>> = (0..size).map(|_| Vec::new()).collect();
        for (b, a) in r.bodies.iter().zip(&r.accel) {
            grav_out[(b.id % size as u64) as usize].push(GravAcc {
                id: b.id,
                acc: a.acc,
            });
        }
        let at_home: Vec<GravAcc> = comm.alltoallv(grav_out).into_iter().flatten().collect();
        let home_map: std::collections::HashMap<u64, [f64; 3]> =
            at_home.iter().map(|g| (g.id, g.acc)).collect();
        // Ask homes for my SPH shard's ids.
        let mut want: Vec<Vec<u64>> = (0..size).map(|_| Vec::new()).collect();
        for p in &parts {
            want[(p.id % size as u64) as usize].push(p.id);
        }
        let requests = comm.alltoallv(want);
        let mut replies: Vec<Vec<GravAcc>> = (0..size).map(|_| Vec::new()).collect();
        for (r_src, ids) in requests.into_iter().enumerate() {
            for id in ids {
                replies[r_src].push(GravAcc {
                    id,
                    acc: home_map[&id],
                });
            }
        }
        let got: Vec<GravAcc> = comm.alltoallv(replies).into_iter().flatten().collect();
        let acc_of: std::collections::HashMap<u64, [f64; 3]> =
            got.iter().map(|g| (g.id, g.acc)).collect();
        for p in &mut parts {
            let g = acc_of[&p.id];
            for d in 0..3 {
                p.acc[d] += g[d];
            }
        }
        self.shard = parts;
    }

    /// Global CFL timestep (allreduced minimum).
    pub fn cfl_dt(&self, comm: &mut Comm) -> f64 {
        let mut dt = self.dt_max;
        for p in &self.shard {
            let signal = p.cs + p.speed() + 1e-12;
            dt = dt.min(self.cfl * p.h / signal);
            let a = (p.acc[0].powi(2) + p.acc[1].powi(2) + p.acc[2].powi(2)).sqrt();
            if a > 0.0 {
                dt = dt.min(self.cfl * (p.h / a).sqrt());
            }
        }
        comm.allreduce(dt, |a, b| a.min(*b))
    }

    /// One KDK step with an explicit `dt` (pass `cfl_dt` for adaptive).
    pub fn step(&mut self, comm: &mut Comm, dt: f64) {
        for p in &mut self.shard {
            for d in 0..3 {
                p.vel[d] += 0.5 * dt * p.acc[d];
                p.pos[d] += dt * p.vel[d];
            }
            p.u = (p.u + 0.5 * dt * p.du_dt).max(0.0);
        }
        self.compute_rhs(comm);
        for p in &mut self.shard {
            for d in 0..3 {
                p.vel[d] += 0.5 * dt * p.acc[d];
            }
            p.u = (p.u + 0.5 * dt * p.du_dt).max(0.0);
        }
        self.time += dt;
    }
}

#[cfg(test)]
mod stepper_tests {
    use super::*;
    use crate::integrate::{SphConfig, SphSimulation};

    #[test]
    fn distributed_stepper_tracks_the_serial_one() {
        let all = tests::gas_ball(500, 21);
        // Serial reference with the matching configuration.
        let cfg = SphConfig {
            eos: Eos::GammaLaw { gamma: 5.0 / 3.0 },
            gravity_theta: Some(0.5),
            neutrino: None,
            dt_max: 0.02,
            ..Default::default()
        };
        let dt = 0.004;
        let mut serial = SphSimulation::new(all.clone(), cfg);
        for _ in 0..3 {
            // Force the fixed dt by bypassing the CFL (the distributed
            // run will use the same value).
            for p in &mut serial.parts {
                let _ = p;
            }
            // Reproduce SphSimulation::step with fixed dt:
            for p in &mut serial.parts {
                for d in 0..3 {
                    p.vel[d] += 0.5 * dt * p.acc[d];
                    p.pos[d] += dt * p.vel[d];
                }
                p.u = (p.u + 0.5 * dt * p.du_dt).max(0.0);
            }
            // Recompute serial RHS through the public pipeline.
            let mut parts = std::mem::take(&mut serial.parts);
            let nt = NeighborTree::build(&parts);
            compute_density(&mut parts, &nt);
            apply_eos(&mut parts, &cfg.eos);
            hydro_forces(&mut parts, &nt, &cfg.viscosity);
            let eps = 0.5 * parts.iter().map(|p| p.h).fold(f64::INFINITY, f64::min);
            let _ = eps;
            // Serial gravity at matching softening rule (0.5 * h_max).
            let h_max = parts.iter().map(|p| p.h).fold(0.0f64, f64::max);
            let nt2 = NeighborTree::build(&parts);
            crate::forces::add_gravity(&mut parts, &nt2, 0.5, 0.5 * h_max);
            serial.parts = parts;
            for p in &mut serial.parts {
                for d in 0..3 {
                    p.vel[d] += 0.5 * dt * p.acc[d];
                }
                p.u = (p.u + 0.5 * dt * p.du_dt).max(0.0);
            }
        }
        let mut serial_pos: Vec<(u64, [f64; 3])> =
            serial.parts.iter().map(|p| (p.id, p.pos)).collect();
        serial_pos.sort_by_key(|x| x.0);

        let shards = msg::run(3, |c| {
            let mine: Vec<SphParticle> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| i % c.size() == c.rank())
                .map(|(_, p)| *p)
                .collect();
            let mut sim = DistributedSph::new(c, mine, Eos::GammaLaw { gamma: 5.0 / 3.0 }, 0.5);
            for _ in 0..3 {
                sim.step(c, 0.004);
            }
            sim.shard.iter().map(|p| (p.id, p.pos)).collect::<Vec<_>>()
        });
        let mut dist_pos: Vec<(u64, [f64; 3])> = shards.into_iter().flatten().collect();
        dist_pos.sort_by_key(|x| x.0);
        assert_eq!(dist_pos.len(), serial_pos.len());
        let mut worst: f64 = 0.0;
        for ((_, a), (_, b)) in dist_pos.iter().zip(&serial_pos) {
            for d in 0..3 {
                worst = worst.max((a[d] - b[d]).abs());
            }
        }
        // Serial uses the per-body serial tree; distributed uses the HOT
        // request-driven walk. Both are within MAC error of the truth,
        // so trajectories agree to ~1e-4 over a few steps.
        assert!(worst < 5e-3, "worst position deviation {worst}");
    }

    #[test]
    fn distributed_cfl_is_global() {
        let all = tests::gas_ball(200, 31);
        let dts = msg::run(2, |c| {
            let mine: Vec<SphParticle> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| i % c.size() == c.rank())
                .map(|(_, p)| *p)
                .collect();
            let sim = DistributedSph::new(c, mine, Eos::GammaLaw { gamma: 5.0 / 3.0 }, 0.6);
            sim.cfl_dt(c)
        });
        assert!((dts[0] - dts[1]).abs() < 1e-15, "CFL not global: {dts:?}");
        assert!(dts[0] > 0.0 && dts[0] <= 0.02);
    }
}
