//! Neighbour search over the `hot` oct-tree.
//!
//! The supernova code reuses the N-body tree for range queries: a ball
//! query descends only cells whose bounding cube overlaps the search
//! sphere.

use crate::particle::SphParticle;
use hot::tree::{Body, CellIdx, Tree, NO_CELL};
use std::cell::RefCell;

thread_local! {
    /// Reusable traversal stack: ball queries run once per particle per
    /// adaptive-h iteration, so a fresh `Vec` per call would dominate
    /// the allocator profile of `compute_density`.
    static BALL_STACK: RefCell<Vec<CellIdx>> = const { RefCell::new(Vec::new()) };
}

/// A neighbour-search structure over a snapshot of particle positions.
/// `Body::id` stores the particle index.
pub struct NeighborTree {
    tree: Tree,
}

impl NeighborTree {
    pub fn build(particles: &[SphParticle]) -> NeighborTree {
        let bodies: Vec<Body> = particles
            .iter()
            .enumerate()
            .map(|(i, p)| Body {
                pos: p.pos,
                vel: [0.0; 3],
                mass: p.mass,
                id: i as u64,
                work: 1.0,
            })
            .collect();
        NeighborTree {
            tree: Tree::build(bodies, 16),
        }
    }

    /// Also expose the underlying tree (for gravity).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Visit (in a deterministic, query-independent order) every particle
    /// within `radius` of `center`, including the one at the center. This
    /// is the allocation-free primitive the other queries wrap: the
    /// traversal stack is a reusable thread-local, and matches are handed
    /// to `visit` instead of being collected.
    ///
    /// `visit` must not itself issue a ball query (the thread-local stack
    /// is borrowed for the duration of the walk).
    pub fn ball_visit<F: FnMut(usize)>(&self, center: [f64; 3], radius: f64, mut visit: F) {
        let r2 = radius * radius;
        BALL_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.clear();
            stack.push(0);
            while let Some(ci) = stack.pop() {
                let cell = self.tree.cell(ci);
                // Cube/sphere overlap test.
                let mut d2 = 0.0;
                for d in 0..3 {
                    let gap = (center[d] - cell.center[d]).abs() - cell.half;
                    if gap > 0.0 {
                        d2 += gap * gap;
                    }
                }
                if d2 > r2 {
                    continue;
                }
                if cell.is_leaf {
                    for b in self.tree.leaf_bodies(cell) {
                        let dx = b.pos[0] - center[0];
                        let dy = b.pos[1] - center[1];
                        let dz = b.pos[2] - center[2];
                        if dx * dx + dy * dy + dz * dz <= r2 {
                            visit(b.id as usize);
                        }
                    }
                } else {
                    for &ch in &cell.children {
                        if ch != NO_CELL {
                            stack.push(ch);
                        }
                    }
                }
            }
        });
    }

    /// Number of particles within `radius` of `center` — what the
    /// adaptive-h iteration needs, without materializing the index list.
    pub fn ball_count(&self, center: [f64; 3], radius: f64) -> usize {
        let mut n = 0;
        self.ball_visit(center, radius, |_| n += 1);
        n
    }

    /// Collect the ball into a caller-owned buffer (cleared first), so a
    /// loop over particles can reuse one allocation.
    pub fn ball_into(&self, center: [f64; 3], radius: f64, out: &mut Vec<usize>) {
        out.clear();
        self.ball_visit(center, radius, |i| out.push(i));
    }

    /// Indices (into the original particle slice) of all particles within
    /// `radius` of `center`, including the particle at the center itself.
    pub fn ball(&self, center: [f64; 3], radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.ball_into(center, radius, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_particles(n: usize, seed: u64) -> Vec<SphParticle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                SphParticle::new(
                    [
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ],
                    [0.0; 3],
                    1.0,
                    0.0,
                    i as u64,
                )
            })
            .collect()
    }

    fn brute_ball(parts: &[SphParticle], c: [f64; 3], r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let dx = p.pos[0] - c[0];
                let dy = p.pos[1] - c[1];
                let dz = p.pos[2] - c[2];
                dx * dx + dy * dy + dz * dz <= r * r
            })
            .map(|(i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn ball_query_matches_brute_force() {
        let parts = random_particles(500, 3);
        let nt = NeighborTree::build(&parts);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..30 {
            let c = [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ];
            let r = rng.gen_range(0.05..0.8);
            let mut got = nt.ball(c, r);
            got.sort_unstable();
            let want = brute_ball(&parts, c, r);
            assert_eq!(got, want, "center {c:?} radius {r}");
        }
    }

    #[test]
    fn visitor_count_and_collect_agree() {
        let parts = random_particles(400, 7);
        let nt = NeighborTree::build(&parts);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut buf = Vec::new();
        for _ in 0..20 {
            let c = [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ];
            let r = rng.gen_range(0.05..0.8);
            let owned = nt.ball(c, r);
            assert_eq!(nt.ball_count(c, r), owned.len());
            nt.ball_into(c, r, &mut buf);
            assert_eq!(buf, owned, "ball_into order differs");
            let mut visited = Vec::new();
            nt.ball_visit(c, r, |i| visited.push(i));
            assert_eq!(visited, owned, "visitor order differs");
        }
    }

    #[test]
    fn empty_ball_far_away() {
        let parts = random_particles(100, 5);
        let nt = NeighborTree::build(&parts);
        assert!(nt.ball([100.0, 100.0, 100.0], 0.5).is_empty());
    }

    #[test]
    fn ball_includes_center_particle() {
        let parts = random_particles(100, 6);
        let nt = NeighborTree::build(&parts);
        let got = nt.ball(parts[42].pos, 0.01);
        assert!(got.contains(&42));
    }
}
