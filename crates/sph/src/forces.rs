//! SPH momentum and energy equations, artificial viscosity, and tree
//! gravity — "the coupling of gravitational and pressure forces of the
//! core as it collapses down to nuclear densities" (§4.4).

use crate::eos::Eos;
use crate::kernel;
use crate::neighbors::NeighborTree;
use crate::particle::SphParticle;
use hot::gravity::GravityConfig;
use hot::traverse;
use rayon::prelude::*;

/// Artificial viscosity parameters (Monaghan 1992).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viscosity {
    pub alpha: f64,
    pub beta: f64,
}

impl Default for Viscosity {
    fn default() -> Self {
        Viscosity {
            alpha: 1.0,
            beta: 2.0,
        }
    }
}

/// Evaluate the EOS for every particle (fills `pres`, `cs`).
pub fn apply_eos(parts: &mut [SphParticle], eos: &Eos) {
    for p in parts {
        let (pres, cs) = eos.eval(p.rho, p.u.max(0.0));
        p.pres = pres;
        p.cs = cs;
    }
}

/// Compute hydrodynamic accelerations and du/dt (symmetric form, mean
/// smoothing length, Monaghan Π viscosity). Resets `acc`/`du_dt` first.
///
/// Gather formulation, parallel over particles: each particle sums the
/// contribution of every interacting pair from its own side, with no
/// writes to other particles' accumulators. Momentum conservation is
/// still exact because the pair term is computed bitwise-antisymmetric
/// on the two sides: `grad_w` is exactly odd in floating point (every
/// component of `dx` only flips sign, and products of two flipped signs
/// are exact), and the symmetric `coef` is invariant under swapping i/j
/// (commutative sums of identical rounded terms).
pub fn hydro_forces(parts: &mut [SphParticle], nt: &NeighborTree, visc: &Viscosity) {
    // Candidate radius SUPPORT·(h_i + h_max)/2 guarantees every pair with
    // r < SUPPORT·h̄ is discovered from both sides, making the pair set
    // independent of particle ordering.
    let h_max = parts.iter().map(|p| p.h).fold(0.0f64, f64::max);
    let snap: &[SphParticle] = parts;
    let sums: Vec<([f64; 3], f64)> = snap
        .par_iter()
        .enumerate()
        .map(|(i, pi)| {
            let mut acc = [0.0f64; 3];
            let mut dudt = 0.0f64;
            if pi.rho <= 0.0 {
                return (acc, dudt);
            }
            nt.ball_visit(pi.pos, kernel::SUPPORT * 0.5 * (pi.h + h_max), |j| {
                if j == i {
                    return; // no self-interaction
                }
                let pj = &snap[j];
                if pj.rho <= 0.0 {
                    return;
                }
                let dx = [
                    pi.pos[0] - pj.pos[0],
                    pi.pos[1] - pj.pos[1],
                    pi.pos[2] - pj.pos[2],
                ];
                let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                let hbar = 0.5 * (pi.h + pj.h);
                if r2 >= (kernel::SUPPORT * hbar).powi(2) || r2 == 0.0 {
                    return;
                }
                let dv = [
                    pi.vel[0] - pj.vel[0],
                    pi.vel[1] - pj.vel[1],
                    pi.vel[2] - pj.vel[2],
                ];
                let vdotr = dv[0] * dx[0] + dv[1] * dx[1] + dv[2] * dx[2];
                // Monaghan viscosity: only for approaching pairs.
                let pi_visc = if vdotr < 0.0 {
                    let mu = hbar * vdotr / (r2 + 0.01 * hbar * hbar);
                    let cbar = 0.5 * (pi.cs + pj.cs);
                    let rhobar = 0.5 * (pi.rho + pj.rho);
                    (-visc.alpha * cbar * mu + visc.beta * mu * mu) / rhobar
                } else {
                    0.0
                };
                let gw = kernel::grad_w(dx, hbar);
                let coef = pi.pres / (pi.rho * pi.rho) + pj.pres / (pj.rho * pj.rho) + pi_visc;
                for d in 0..3 {
                    acc[d] -= pj.mass * coef * gw[d];
                }
                let gdotv = gw[0] * dv[0] + gw[1] * dv[1] + gw[2] * dv[2];
                dudt += 0.5 * pj.mass * coef * gdotv;
            });
            (acc, dudt)
        })
        .collect();
    for (p, (a, du)) in parts.iter_mut().zip(sums) {
        p.acc = a;
        p.du_dt = du;
    }
}

/// Add self-gravity accelerations from the tree (softened by the local
/// smoothing length scale `eps`).
pub fn add_gravity(parts: &mut [SphParticle], nt: &NeighborTree, theta: f64, eps: f64) {
    let cfg = GravityConfig {
        theta,
        eps,
        ..GravityConfig::default()
    };
    let (accels, _) = traverse::tree_accelerations(nt.tree(), &cfg);
    // The tree reordered bodies; map back through Body::id.
    for (body, a) in nt.tree().bodies.iter().zip(&accels) {
        let i = body.id as usize;
        for d in 0..3 {
            parts[i].acc[d] += a.acc[d];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::compute_density;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gas_ball(n: usize, u: f64, seed: u64) -> Vec<SphParticle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                // Uniform ball of radius 1.
                let r = rng.gen::<f64>().cbrt();
                let costh = rng.gen_range(-1.0..1.0f64);
                let sinth = (1.0 - costh * costh).sqrt();
                let phi = rng.gen::<f64>() * std::f64::consts::TAU;
                SphParticle::new(
                    [r * sinth * phi.cos(), r * sinth * phi.sin(), r * costh],
                    [0.0; 3],
                    1.0 / n as f64,
                    u,
                    i as u64,
                )
            })
            .collect()
    }

    fn prepare(parts: &mut [SphParticle], eos: &Eos) -> NeighborTree {
        let nt = NeighborTree::build(parts);
        compute_density(parts, &nt);
        apply_eos(parts, eos);
        nt
    }

    #[test]
    fn pressure_pushes_a_hot_ball_apart() {
        let mut parts = gas_ball(800, 10.0, 1);
        let eos = Eos::GammaLaw { gamma: 5.0 / 3.0 };
        let nt = prepare(&mut parts, &eos);
        hydro_forces(&mut parts, &nt, &Viscosity::default());
        // The interior has a uniform pressure (no net force); the outer
        // shell, where the pressure gradient lives, accelerates outward.
        let mut mean_proj = 0.0;
        let mut total = 0;
        for p in &parts {
            let r = p.radius();
            if r < 0.6 {
                continue;
            }
            mean_proj += (p.acc[0] * p.pos[0] + p.acc[1] * p.pos[1] + p.acc[2] * p.pos[2]) / r;
            total += 1;
        }
        mean_proj /= total as f64;
        assert!(total > 100);
        assert!(mean_proj > 0.0, "mean radial acceleration {mean_proj}");
    }

    #[test]
    fn momentum_is_conserved_exactly() {
        let mut parts = gas_ball(600, 5.0, 2);
        // Give it some random motion so viscosity kicks in too.
        let mut rng = SmallRng::seed_from_u64(3);
        for p in &mut parts {
            p.vel = [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ];
        }
        let eos = Eos::GammaLaw { gamma: 5.0 / 3.0 };
        let nt = prepare(&mut parts, &eos);
        hydro_forces(&mut parts, &nt, &Viscosity::default());
        let mut net = [0.0; 3];
        let mut scale = 0.0;
        for p in &parts {
            for d in 0..3 {
                net[d] += p.mass * p.acc[d];
            }
            scale += p.mass * (p.acc[0].powi(2) + p.acc[1].powi(2) + p.acc[2].powi(2)).sqrt();
        }
        let mag = (net[0] * net[0] + net[1] * net[1] + net[2] * net[2]).sqrt();
        assert!(mag < 1e-10 * scale, "net force {mag} vs scale {scale}");
    }

    #[test]
    fn viscous_compression_heats() {
        // Two streams colliding: du/dt must be positive where they meet.
        let mut parts = gas_ball(800, 0.1, 4);
        for p in &mut parts {
            p.vel = [-2.0 * p.pos[0].signum(), 0.0, 0.0];
        }
        let eos = Eos::GammaLaw { gamma: 5.0 / 3.0 };
        let nt = prepare(&mut parts, &eos);
        hydro_forces(&mut parts, &nt, &Viscosity::default());
        let mid_heating: f64 = parts
            .iter()
            .filter(|p| p.pos[0].abs() < 0.2)
            .map(|p| p.du_dt)
            .sum();
        assert!(mid_heating > 0.0, "no shock heating: {mid_heating}");
    }

    #[test]
    fn gravity_pulls_inward() {
        let mut parts = gas_ball(500, 0.01, 5);
        let eos = Eos::GammaLaw { gamma: 5.0 / 3.0 };
        let nt = prepare(&mut parts, &eos);
        for p in parts.iter_mut() {
            p.acc = [0.0; 3];
            p.du_dt = 0.0;
        }
        add_gravity(&mut parts, &nt, 0.6, 0.05);
        let mut inward = 0;
        let mut total = 0;
        for p in &parts {
            let r = p.radius();
            if r < 0.3 {
                continue;
            }
            total += 1;
            let proj = (p.acc[0] * p.pos[0] + p.acc[1] * p.pos[1] + p.acc[2] * p.pos[2]) / r;
            if proj < 0.0 {
                inward += 1;
            }
        }
        assert!(
            inward as f64 / total as f64 > 0.95,
            "{inward}/{total} accelerate inward"
        );
    }

    #[test]
    fn cold_static_gas_feels_no_du_dt() {
        let mut parts = gas_ball(400, 0.0, 6);
        let eos = Eos::GammaLaw { gamma: 5.0 / 3.0 };
        let nt = prepare(&mut parts, &eos);
        hydro_forces(&mut parts, &nt, &Viscosity::default());
        for p in &parts {
            assert!(p.du_dt.abs() < 1e-12, "du/dt = {}", p.du_dt);
        }
    }
}
