//! Equations of state: gamma-law gas and the nuclear-stiffening hybrid
//! used for core collapse.
//!
//! Core collapse proceeds on a soft (Γ ≈ 4/3) effective EOS until the
//! center reaches nuclear density, where the EOS stiffens sharply
//! (Γ ≈ 2.5–3) — that stiffening is what halts the collapse and drives
//! the bounce shock. We use the standard hybrid form: a cold (polytropic)
//! pressure with a density-dependent exponent plus a thermal gamma-law
//! part.

/// An equation of state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Eos {
    /// `P = (γ−1) ρ u`.
    GammaLaw { gamma: f64 },
    /// Cold polytrope with stiffening at `rho_nuc` + thermal part:
    /// `P = K·ρ^Γ(ρ) + (γ_th − 1) ρ u`, Γ = `gamma_soft` below nuclear
    /// density and `gamma_stiff` above (K adjusted for continuity).
    Hybrid {
        k: f64,
        gamma_soft: f64,
        gamma_stiff: f64,
        rho_nuc: f64,
        gamma_th: f64,
    },
}

impl Eos {
    /// The collapse EOS in code units (G = M = R = 1): soft Γ = 4/3,
    /// stiff Γ = 2.5 above `rho_nuc`.
    pub fn collapse(k: f64, rho_nuc: f64) -> Eos {
        Eos::Hybrid {
            k,
            gamma_soft: 4.0 / 3.0,
            gamma_stiff: 2.5,
            rho_nuc,
            gamma_th: 5.0 / 3.0,
        }
    }

    /// Pressure and sound speed for density `rho` and specific internal
    /// energy `u`.
    pub fn eval(&self, rho: f64, u: f64) -> (f64, f64) {
        debug_assert!(rho >= 0.0 && u >= 0.0);
        match *self {
            Eos::GammaLaw { gamma } => {
                let p = (gamma - 1.0) * rho * u;
                let cs = if rho > 0.0 {
                    (gamma * p / rho).sqrt()
                } else {
                    0.0
                };
                (p, cs)
            }
            Eos::Hybrid {
                k,
                gamma_soft,
                gamma_stiff,
                rho_nuc,
                gamma_th,
            } => {
                let (kk, gg) = if rho <= rho_nuc {
                    (k, gamma_soft)
                } else {
                    // Continuity at rho_nuc: K₂ = K·ρ_nuc^(Γ₁−Γ₂).
                    (k * rho_nuc.powf(gamma_soft - gamma_stiff), gamma_stiff)
                };
                let p_cold = kk * rho.powf(gg);
                let p_th = (gamma_th - 1.0) * rho * u;
                let p = p_cold + p_th;
                let cs2 = if rho > 0.0 {
                    gg * p_cold / rho + gamma_th * p_th / rho
                } else {
                    0.0
                };
                (p, cs2.max(0.0).sqrt())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_law_basics() {
        let eos = Eos::GammaLaw { gamma: 5.0 / 3.0 };
        let (p, cs) = eos.eval(2.0, 3.0);
        assert!((p - 4.0).abs() < 1e-14); // (2/3)·2·3
        assert!((cs - (5.0 / 3.0 * 4.0 / 2.0_f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn hybrid_is_continuous_at_nuclear_density() {
        let eos = Eos::collapse(1.0, 100.0);
        let below = eos.eval(100.0 * (1.0 - 1e-9), 0.0).0;
        let above = eos.eval(100.0 * (1.0 + 1e-9), 0.0).0;
        assert!(
            ((below - above) / below).abs() < 1e-6,
            "P jumps at rho_nuc: {below} vs {above}"
        );
    }

    #[test]
    fn stiffening_raises_pressure_growth() {
        let eos = Eos::collapse(1.0, 100.0);
        // Logarithmic pressure slope below vs above nuclear density.
        let slope = |rho: f64| {
            let (p1, _) = eos.eval(rho, 0.0);
            let (p2, _) = eos.eval(rho * 1.01, 0.0);
            (p2 / p1).ln() / 1.01f64.ln()
        };
        assert!((slope(10.0) - 4.0 / 3.0).abs() < 0.01);
        assert!((slope(1000.0) - 2.5).abs() < 0.01);
    }

    #[test]
    fn thermal_part_adds_pressure() {
        let eos = Eos::collapse(1.0, 100.0);
        let cold = eos.eval(10.0, 0.0).0;
        let hot = eos.eval(10.0, 5.0).0;
        assert!(hot > cold);
        assert!((hot - cold - (2.0 / 3.0) * 10.0 * 5.0).abs() < 1e-10);
    }

    #[test]
    fn sound_speed_rises_through_bounce_densities() {
        let eos = Eos::collapse(1.0, 100.0);
        let cs_low = eos.eval(50.0, 0.0).1;
        let cs_high = eos.eval(500.0, 0.0).1;
        assert!(cs_high > cs_low * 2.0);
    }

    #[test]
    fn vacuum_is_silent() {
        let eos = Eos::GammaLaw { gamma: 1.4 };
        assert_eq!(eos.eval(0.0, 0.0), (0.0, 0.0));
    }
}
