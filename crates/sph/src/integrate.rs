//! CFL-limited leapfrog driver for the SPH equations.

use crate::density::compute_density;
use crate::eos::Eos;
use crate::forces::{add_gravity, apply_eos, hydro_forces, Viscosity};
use crate::neighbors::NeighborTree;
use crate::neutrino::{neutrino_transport, NeutrinoConfig};
use crate::particle::SphParticle;

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct SphConfig {
    pub eos: Eos,
    pub viscosity: Viscosity,
    /// None disables self-gravity.
    pub gravity_theta: Option<f64>,
    /// None disables neutrino transport.
    pub neutrino: Option<NeutrinoConfig>,
    /// CFL safety factor.
    pub cfl: f64,
    /// Hard bounds on the timestep.
    pub dt_min: f64,
    pub dt_max: f64,
}

impl Default for SphConfig {
    fn default() -> Self {
        SphConfig {
            eos: Eos::GammaLaw { gamma: 5.0 / 3.0 },
            viscosity: Viscosity::default(),
            gravity_theta: Some(0.6),
            neutrino: None,
            cfl: 0.3,
            dt_min: 1e-9,
            dt_max: 0.05,
        }
    }
}

/// A running SPH simulation.
pub struct SphSimulation {
    pub parts: Vec<SphParticle>,
    pub cfg: SphConfig,
    pub time: f64,
    pub steps: u64,
}

impl SphSimulation {
    /// Set up: build the tree, compute densities, EOS and initial forces.
    pub fn new(mut parts: Vec<SphParticle>, cfg: SphConfig) -> SphSimulation {
        assert!(!parts.is_empty());
        Self::compute_rhs(&mut parts, &cfg);
        SphSimulation {
            parts,
            cfg,
            time: 0.0,
            steps: 0,
        }
    }

    fn compute_rhs(parts: &mut [SphParticle], cfg: &SphConfig) {
        let nt = NeighborTree::build(parts);
        compute_density(parts, &nt);
        apply_eos(parts, &cfg.eos);
        hydro_forces(parts, &nt, &cfg.viscosity);
        if let Some(theta) = cfg.gravity_theta {
            let eps = 0.5 * parts.iter().map(|p| p.h).fold(f64::INFINITY, f64::min);
            add_gravity(parts, &nt, theta, eps.max(1e-6));
        }
        if let Some(nu) = &cfg.neutrino {
            neutrino_transport(parts, &nt, nu);
        }
    }

    /// The CFL timestep: `cfl · min h/(cs + |v| + ε)`.
    pub fn cfl_dt(&self) -> f64 {
        let mut dt = self.cfg.dt_max;
        for p in &self.parts {
            let signal = p.cs + p.speed() + 1e-12;
            dt = dt.min(self.cfg.cfl * p.h / signal);
            // Acceleration limit.
            let a = (p.acc[0].powi(2) + p.acc[1].powi(2) + p.acc[2].powi(2)).sqrt();
            if a > 0.0 {
                dt = dt.min(self.cfg.cfl * (p.h / a).sqrt());
            }
        }
        dt.max(self.cfg.dt_min)
    }

    /// One KDK leapfrog step; returns the dt taken.
    pub fn step(&mut self) -> f64 {
        let dt = self.cfl_dt();
        // Kick + drift.
        for p in &mut self.parts {
            for d in 0..3 {
                p.vel[d] += 0.5 * dt * p.acc[d];
                p.pos[d] += dt * p.vel[d];
            }
            p.u = (p.u + 0.5 * dt * p.du_dt).max(0.0);
            p.enu = (p.enu + 0.5 * dt * p.denu_dt).max(0.0);
        }
        // New forces.
        Self::compute_rhs(&mut self.parts, &self.cfg);
        // Kick.
        for p in &mut self.parts {
            for d in 0..3 {
                p.vel[d] += 0.5 * dt * p.acc[d];
            }
            p.u = (p.u + 0.5 * dt * p.du_dt).max(0.0);
            p.enu = (p.enu + 0.5 * dt * p.denu_dt).max(0.0);
        }
        self.time += dt;
        self.steps += 1;
        dt
    }

    /// Run until `t_end` or `max_steps`.
    pub fn run_until(&mut self, t_end: f64, max_steps: u64) {
        while self.time < t_end && self.steps < max_steps {
            self.step();
        }
    }

    /// Peak density over particles (bounce diagnostic).
    pub fn max_density(&self) -> f64 {
        self.parts.iter().map(|p| p.rho).fold(0.0, f64::max)
    }

    /// Total (kinetic, thermal, neutrino) energies.
    pub fn energies(&self) -> (f64, f64, f64) {
        let mut ke = 0.0;
        let mut th = 0.0;
        let mut nu = 0.0;
        for p in &self.parts {
            ke += 0.5 * p.mass * p.speed().powi(2);
            th += p.mass * p.u;
            nu += p.mass * p.enu;
        }
        (ke, th, nu)
    }

    /// Total angular momentum about the origin.
    pub fn angular_momentum(&self) -> [f64; 3] {
        let mut l = [0.0; 3];
        for p in &self.parts {
            let j = p.specific_angular_momentum();
            for d in 0..3 {
                l[d] += p.mass * j[d];
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn hot_ball(n: usize, u: f64, seed: u64) -> Vec<SphParticle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let r = rng.gen::<f64>().cbrt();
                let costh = rng.gen_range(-1.0..1.0f64);
                let sinth = (1.0 - costh * costh).sqrt();
                let phi = rng.gen::<f64>() * std::f64::consts::TAU;
                SphParticle::new(
                    [r * sinth * phi.cos(), r * sinth * phi.sin(), r * costh],
                    [0.0; 3],
                    1.0 / n as f64,
                    u,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn hot_ball_expands_without_gravity() {
        let cfg = SphConfig {
            gravity_theta: None,
            ..Default::default()
        };
        let mut sim = SphSimulation::new(hot_ball(400, 5.0, 1), cfg);
        let r0: f64 = sim.parts.iter().map(|p| p.radius()).sum::<f64>() / 400.0;
        for _ in 0..10 {
            sim.step();
        }
        let r1: f64 = sim.parts.iter().map(|p| p.radius()).sum::<f64>() / 400.0;
        assert!(r1 > r0 * 1.02, "no expansion: {r0} → {r1}");
        // Thermal energy converts to kinetic.
        let (ke, _, _) = sim.energies();
        assert!(ke > 0.0);
    }

    #[test]
    fn cold_selfgravitating_ball_contracts() {
        let cfg = SphConfig {
            eos: Eos::GammaLaw { gamma: 5.0 / 3.0 },
            ..Default::default()
        };
        let mut sim = SphSimulation::new(hot_ball(400, 1e-4, 2), cfg);
        let r0: f64 = sim.parts.iter().map(|p| p.radius()).sum::<f64>() / 400.0;
        for _ in 0..10 {
            sim.step();
        }
        let r1: f64 = sim.parts.iter().map(|p| p.radius()).sum::<f64>() / 400.0;
        assert!(r1 < r0 * 0.99, "no contraction: {r0} → {r1}");
    }

    #[test]
    fn angular_momentum_is_conserved() {
        let mut parts = hot_ball(400, 0.5, 3);
        // Solid-body rotation about z.
        for p in &mut parts {
            let omega = 0.5;
            p.vel[0] = -omega * p.pos[1];
            p.vel[1] = omega * p.pos[0];
        }
        let mut sim = SphSimulation::new(parts, SphConfig::default());
        let l0 = sim.angular_momentum();
        for _ in 0..10 {
            sim.step();
        }
        let l1 = sim.angular_momentum();
        assert!(
            (l1[2] - l0[2]).abs() < 0.02 * l0[2].abs(),
            "Lz {} → {}",
            l0[2],
            l1[2]
        );
    }

    #[test]
    fn timestep_respects_bounds() {
        let cfg = SphConfig::default();
        let sim = SphSimulation::new(hot_ball(200, 1.0, 4), cfg);
        let dt = sim.cfl_dt();
        assert!(dt >= cfg.dt_min && dt <= cfg.dt_max);
    }

    #[test]
    fn internal_energy_stays_nonnegative() {
        let cfg = SphConfig {
            neutrino: Some(crate::neutrino::NeutrinoConfig {
                emit0: 100.0, // violent cooling
                ..Default::default()
            }),
            gravity_theta: None,
            ..Default::default()
        };
        let mut sim = SphSimulation::new(hot_ball(200, 0.5, 5), cfg);
        for _ in 0..5 {
            sim.step();
        }
        for p in &sim.parts {
            assert!(p.u >= 0.0 && p.enu >= 0.0);
        }
    }
}
