//! The cubic-spline (M4) smoothing kernel (Monaghan & Lattanzio 1985).
//!
//! `W(r, h) = σ/h³ · { 1 − 1.5q² + 0.75q³        0 ≤ q ≤ 1
//!                     0.25 (2 − q)³              1 < q ≤ 2
//!                     0                          q > 2 }`
//! with `q = r/h` and `σ = 1/π`. Support radius `2h`.

use std::f64::consts::PI;

/// Kernel support radius in units of `h`.
pub const SUPPORT: f64 = 2.0;

/// W(r, h).
#[inline]
pub fn w(r: f64, h: f64) -> f64 {
    debug_assert!(r >= 0.0 && h > 0.0);
    let q = r / h;
    let sigma = 1.0 / (PI * h * h * h);
    if q <= 1.0 {
        sigma * (1.0 - 1.5 * q * q + 0.75 * q * q * q)
    } else if q <= 2.0 {
        let t = 2.0 - q;
        sigma * 0.25 * t * t * t
    } else {
        0.0
    }
}

/// dW/dr (scalar radial derivative; the vector gradient is
/// `dW/dr · r̂`).
#[inline]
pub fn dw_dr(r: f64, h: f64) -> f64 {
    debug_assert!(r >= 0.0 && h > 0.0);
    let q = r / h;
    let sigma = 1.0 / (PI * h * h * h * h);
    if q <= 1.0 {
        sigma * (-3.0 * q + 2.25 * q * q)
    } else if q <= 2.0 {
        let t = 2.0 - q;
        sigma * (-0.75 * t * t)
    } else {
        0.0
    }
}

/// ∇W as a vector for separation `dx = r_i − r_j`.
#[inline]
pub fn grad_w(dx: [f64; 3], h: f64) -> [f64; 3] {
    let r = (dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2]).sqrt();
    if r < 1e-12 * h {
        return [0.0; 3];
    }
    let g = dw_dr(r, h) / r;
    [g * dx[0], g * dx[1], g * dx[2]]
}

/// |∇W|/r — the Brookshaw factor used by the SPH diffusion operator.
#[inline]
pub fn brookshaw_f(r: f64, h: f64) -> f64 {
    if r < 1e-12 * h {
        return 0.0;
    }
    -dw_dr(r, h) / r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_integrates_to_one() {
        // ∫ W 4πr² dr over [0, 2h].
        let h = 0.7;
        let n = 40_000;
        let dr = SUPPORT * h / n as f64;
        let mut total = 0.0;
        for i in 0..n {
            let r = (i as f64 + 0.5) * dr;
            total += w(r, h) * 4.0 * PI * r * r * dr;
        }
        assert!((total - 1.0).abs() < 1e-6, "∫W dV = {total}");
    }

    #[test]
    fn compact_support() {
        assert_eq!(w(2.0001, 1.0), 0.0);
        assert!(w(1.9999, 1.0) > 0.0);
        assert_eq!(dw_dr(2.1, 1.0), 0.0);
    }

    #[test]
    fn kernel_is_monotone_decreasing() {
        let h = 1.0;
        let mut last = w(0.0, h);
        for i in 1..100 {
            let r = 2.0 * i as f64 / 100.0;
            let v = w(r, h);
            assert!(v <= last + 1e-15, "W not monotone at r={r}");
            last = v;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 0.9;
        for &r in &[0.1, 0.5, 0.9, 1.2, 1.7] {
            let eps = 1e-7;
            let fd = (w(r + eps, h) - w(r - eps, h)) / (2.0 * eps);
            let an = dw_dr(r, h);
            assert!(
                (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                "r={r}: {fd} vs {an}"
            );
        }
    }

    #[test]
    fn gradient_points_along_separation() {
        let g = grad_w([0.5, 0.0, 0.0], 1.0);
        assert!(g[0] < 0.0); // kernel decreases away from center
        assert_eq!(g[1], 0.0);
        assert_eq!(g[2], 0.0);
        // Antisymmetry.
        let g2 = grad_w([-0.5, 0.0, 0.0], 1.0);
        assert_eq!(g[0], -g2[0]);
    }

    #[test]
    fn zero_separation_is_safe() {
        assert_eq!(grad_w([0.0; 3], 1.0), [0.0; 3]);
        assert_eq!(brookshaw_f(0.0, 1.0), 0.0);
    }

    #[test]
    fn brookshaw_factor_is_positive_inside_support() {
        for &r in &[0.2, 0.8, 1.5] {
            assert!(brookshaw_f(r, 1.0) > 0.0, "F({r}) not positive");
        }
    }
}
