//! Tree-based smoothed particle hydrodynamics with grey flux-limited
//! diffusion neutrino transport — the paper's §4.4 supernova code.
//!
//! "By implementing the smooth particle hydrodynamics formalism onto the
//! tree structure described above for N-body studies, we have been able
//! to include both the essential physics and a flux-limited diffusion
//! algorithm to model the neutrino transport."
//!
//! Modules:
//! * [`kernel`] — the cubic-spline (M4) smoothing kernel and gradient;
//! * [`neighbors`] — neighbour search over the `hot` oct-tree;
//! * [`particle`] — the SPH particle state;
//! * [`density`] — density summation with adaptive smoothing lengths;
//! * [`eos`] — gamma-law and nuclear-stiffening equations of state;
//! * [`forces`] — momentum and energy equations with Monaghan
//!   artificial viscosity, plus tree gravity;
//! * [`neutrino`] — grey flux-limited diffusion on particles;
//! * [`integrate`] — CFL-limited leapfrog driver;
//! * [`collapse`] — rotating-polytrope core-collapse setup (Figure 8);
//! * [`sedov`] — the Sedov–Taylor blast validation problem;
//! * [`parallel`] — domain-decomposed SPH with ghost exchange over the
//!   message-passing layer (§4.4's distributed runs).

// Numeric kernels index several parallel arrays in lockstep; the
// iterator-adapter rewrites clippy suggests obscure that.
#![allow(clippy::needless_range_loop)]

pub mod checkpoint;
pub mod collapse;
pub mod density;
pub mod eos;
pub mod forces;
pub mod integrate;
pub mod kernel;
pub mod neighbors;
pub mod neutrino;
pub mod parallel;
pub mod particle;
pub mod sedov;

pub use eos::Eos;
pub use integrate::{SphConfig, SphSimulation};
pub use particle::SphParticle;
