//! Density summation with adaptive smoothing lengths.

use crate::kernel;
use crate::neighbors::NeighborTree;
use crate::particle::SphParticle;
use rayon::prelude::*;

/// Target neighbour count for the adaptive h iteration.
pub const N_NGB: usize = 40;
/// Accepted band around the target.
pub const N_NGB_TOL: usize = 10;

/// Adapt one particle's `h` so its neighbour count (within `SUPPORT·h`)
/// lands in `N_NGB ± N_NGB_TOL`. Multiplicative search for a bracketing
/// h, then bisect. Reads only positions, so it is safe per-particle in
/// parallel and independent of evaluation order.
fn adapt_h(nt: &NeighborTree, pos: [f64; 3], h0: f64) -> f64 {
    let mut h = h0.max(1e-6);
    let count = |h: f64| nt.ball_count(pos, kernel::SUPPORT * h);
    let mut n = count(h);
    let mut iter = 0;
    while n < N_NGB - N_NGB_TOL && iter < 60 {
        h *= 1.26;
        n = count(h);
        iter += 1;
    }
    while n > N_NGB + N_NGB_TOL && iter < 60 {
        h /= 1.26;
        n = count(h);
        iter += 1;
    }
    // A couple of bisection refinements if still outside the band.
    if !(N_NGB - N_NGB_TOL..=N_NGB + N_NGB_TOL).contains(&n) {
        let (mut lo, mut hi) = (h / 1.3, h * 1.3);
        for _ in 0..20 {
            let mid = 0.5 * (lo + hi);
            let c = count(mid);
            if c < N_NGB {
                lo = mid;
            } else {
                hi = mid;
            }
            h = mid;
            if (N_NGB - N_NGB_TOL..=N_NGB + N_NGB_TOL).contains(&c) {
                break;
            }
        }
    }
    h
}

/// Adapt each particle's `h` so its neighbour count (within `SUPPORT·h`)
/// lands in `N_NGB ± N_NGB_TOL`, then compute ρ_i = Σ m_j W(r_ij, h_i).
///
/// Both phases run parallel over particles; each particle reads only
/// neighbour positions/masses (never `h`/`rho` of others), so the result
/// is identical to the serial sweep and bitwise stable across runs. The
/// neighbour queries are the non-allocating visitor/count variants, so
/// the steady-state sweep does no per-particle heap allocation.
pub fn compute_density(parts: &mut [SphParticle], nt: &NeighborTree) {
    // Phase 1: adaptive h.
    let snap: &[SphParticle] = parts;
    let hs: Vec<f64> = snap.par_iter().map(|p| adapt_h(nt, p.pos, p.h)).collect();
    for (p, h) in parts.iter_mut().zip(&hs) {
        p.h = *h;
    }
    // Phase 2: density summation at the adapted h.
    let snap: &[SphParticle] = parts;
    let rhos: Vec<f64> = snap
        .par_iter()
        .map(|pi| {
            let pos = pi.pos;
            let mut rho = 0.0;
            nt.ball_visit(pos, kernel::SUPPORT * pi.h, |j| {
                let pj = &snap[j];
                let dx = pos[0] - pj.pos[0];
                let dy = pos[1] - pj.pos[1];
                let dz = pos[2] - pj.pos[2];
                let r = (dx * dx + dy * dy + dz * dz).sqrt();
                rho += pj.mass * kernel::w(r, pi.h);
            });
            rho
        })
        .collect();
    for (p, rho) in parts.iter_mut().zip(&rhos) {
        p.rho = *rho;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Random uniform cube of unit density: n particles of mass 1/n.
    fn uniform_cube(n: usize, seed: u64) -> Vec<SphParticle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                SphParticle::new(
                    [rng.gen(), rng.gen(), rng.gen()],
                    [0.0; 3],
                    1.0 / n as f64,
                    0.0,
                    i as u64,
                )
            })
            .collect()
    }

    /// Regular lattice of unit density: the kernel sum is then a proper
    /// quadrature of the unit density (self-term included).
    fn lattice_cube(side: usize) -> Vec<SphParticle> {
        let n = side * side * side;
        let mut parts = Vec::with_capacity(n);
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    parts.push(SphParticle::new(
                        [
                            (x as f64 + 0.5) / side as f64,
                            (y as f64 + 0.5) / side as f64,
                            (z as f64 + 0.5) / side as f64,
                        ],
                        [0.0; 3],
                        1.0 / n as f64,
                        0.0,
                        parts.len() as u64,
                    ));
                }
            }
        }
        parts
    }

    #[test]
    fn lattice_cube_density_is_near_one() {
        let mut parts = lattice_cube(14);
        let nt = NeighborTree::build(&parts);
        compute_density(&mut parts, &nt);
        let interior: Vec<&SphParticle> = parts
            .iter()
            .filter(|p| p.pos.iter().all(|&x| x > 0.25 && x < 0.75))
            .collect();
        assert!(interior.len() > 50);
        let mean: f64 = interior.iter().map(|p| p.rho).sum::<f64>() / interior.len() as f64;
        assert!((mean - 1.0).abs() < 0.06, "mean interior density {mean}");
    }

    #[test]
    fn poisson_sampling_biases_density_up_by_the_self_term() {
        // A known SPH property: at a Poisson-placed particle the density
        // estimate includes the guaranteed self-contribution m W(0, h),
        // biasing it high by ~25-30% at 40 neighbours.
        let mut parts = uniform_cube(3000, 1);
        let nt = NeighborTree::build(&parts);
        compute_density(&mut parts, &nt);
        let interior: Vec<&SphParticle> = parts
            .iter()
            .filter(|p| p.pos.iter().all(|&x| x > 0.2 && x < 0.8))
            .collect();
        let mean: f64 = interior.iter().map(|p| p.rho).sum::<f64>() / interior.len() as f64;
        assert!(mean > 1.1 && mean < 1.5, "mean interior density {mean}");
    }

    #[test]
    fn neighbor_counts_land_in_band() {
        let mut parts = uniform_cube(2000, 2);
        let nt = NeighborTree::build(&parts);
        compute_density(&mut parts, &nt);
        let mut ok = 0;
        for p in parts
            .iter()
            .filter(|p| p.pos.iter().all(|&x| x > 0.2 && x < 0.8))
        {
            let n = nt.ball(p.pos, kernel::SUPPORT * p.h).len();
            if (N_NGB - N_NGB_TOL..=N_NGB + N_NGB_TOL).contains(&n) {
                ok += 1;
            }
        }
        let total = parts
            .iter()
            .filter(|p| p.pos.iter().all(|&x| x > 0.2 && x < 0.8))
            .count();
        assert!(
            ok as f64 / total as f64 > 0.9,
            "only {ok}/{total} particles in the neighbour band"
        );
    }

    #[test]
    fn denser_regions_get_smaller_h() {
        // Two clumps with 4x different density.
        let mut parts = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..1000 {
            parts.push(SphParticle::new(
                [rng.gen::<f64>() * 0.5, rng.gen(), rng.gen()],
                [0.0; 3],
                1e-3,
                0.0,
                i,
            ));
        }
        for i in 0..250 {
            parts.push(SphParticle::new(
                [3.0 + rng.gen::<f64>() * 0.5, rng.gen(), rng.gen()],
                [0.0; 3],
                1e-3,
                0.0,
                1000 + i,
            ));
        }
        let nt = NeighborTree::build(&parts);
        compute_density(&mut parts, &nt);
        let h_dense: f64 = parts[..1000].iter().map(|p| p.h).sum::<f64>() / 1000.0;
        let h_sparse: f64 = parts[1000..].iter().map(|p| p.h).sum::<f64>() / 250.0;
        assert!(
            h_dense < h_sparse * 0.8,
            "h_dense {h_dense} vs h_sparse {h_sparse}"
        );
        let rho_dense: f64 = parts[..1000].iter().map(|p| p.rho).sum::<f64>() / 1000.0;
        let rho_sparse: f64 = parts[1000..].iter().map(|p| p.rho).sum::<f64>() / 250.0;
        assert!(rho_dense > rho_sparse * 2.0);
    }
}
