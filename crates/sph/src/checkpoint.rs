//! Checkpoint/restart for the SPH integrator.
//!
//! An [`SphSimulation`] snapshot carries the complete particle state —
//! including the derived fields (`rho`, `pres`, `cs`, `acc`, `du_dt`,
//! `denu_dt`) that the next half-kick consumes — so a restore resumes the
//! run without recomputing anything, and the continuation is bit-for-bit
//! identical to the run that was interrupted. That property is what lets
//! the cluster chaos harness claim "same physics answer" after a
//! crash/restart cycle rather than "approximately recovered".

use crate::eos::Eos;
use crate::forces::Viscosity;
use crate::integrate::{SphConfig, SphSimulation};
use crate::neutrino::NeutrinoConfig;
use crate::particle::SphParticle;
use ckpt::{CkptError, Pack, Reader};

impl Pack for SphParticle {
    fn pack(&self, out: &mut Vec<u8>) {
        self.pos.pack(out);
        self.vel.pack(out);
        self.mass.pack(out);
        self.id.pack(out);
        self.h.pack(out);
        self.rho.pack(out);
        self.u.pack(out);
        self.pres.pack(out);
        self.cs.pack(out);
        self.acc.pack(out);
        self.du_dt.pack(out);
        self.enu.pack(out);
        self.denu_dt.pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok(SphParticle {
            pos: Pack::unpack(r)?,
            vel: Pack::unpack(r)?,
            mass: Pack::unpack(r)?,
            id: Pack::unpack(r)?,
            h: Pack::unpack(r)?,
            rho: Pack::unpack(r)?,
            u: Pack::unpack(r)?,
            pres: Pack::unpack(r)?,
            cs: Pack::unpack(r)?,
            acc: Pack::unpack(r)?,
            du_dt: Pack::unpack(r)?,
            enu: Pack::unpack(r)?,
            denu_dt: Pack::unpack(r)?,
        })
    }
}

impl Pack for Viscosity {
    fn pack(&self, out: &mut Vec<u8>) {
        self.alpha.pack(out);
        self.beta.pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok(Viscosity {
            alpha: Pack::unpack(r)?,
            beta: Pack::unpack(r)?,
        })
    }
}

impl Pack for NeutrinoConfig {
    fn pack(&self, out: &mut Vec<u8>) {
        self.c_light.pack(out);
        self.kappa0.pack(out);
        self.emit0.pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok(NeutrinoConfig {
            c_light: Pack::unpack(r)?,
            kappa0: Pack::unpack(r)?,
            emit0: Pack::unpack(r)?,
        })
    }
}

impl Pack for Eos {
    fn pack(&self, out: &mut Vec<u8>) {
        match self {
            Eos::GammaLaw { gamma } => {
                out.push(0);
                gamma.pack(out);
            }
            Eos::Hybrid {
                k,
                gamma_soft,
                gamma_stiff,
                rho_nuc,
                gamma_th,
            } => {
                out.push(1);
                k.pack(out);
                gamma_soft.pack(out);
                gamma_stiff.pack(out);
                rho_nuc.pack(out);
                gamma_th.pack(out);
            }
        }
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        match u8::unpack(r)? {
            0 => Ok(Eos::GammaLaw {
                gamma: Pack::unpack(r)?,
            }),
            1 => Ok(Eos::Hybrid {
                k: Pack::unpack(r)?,
                gamma_soft: Pack::unpack(r)?,
                gamma_stiff: Pack::unpack(r)?,
                rho_nuc: Pack::unpack(r)?,
                gamma_th: Pack::unpack(r)?,
            }),
            _ => Err(CkptError::BadEncoding("Eos")),
        }
    }
}

impl Pack for SphConfig {
    fn pack(&self, out: &mut Vec<u8>) {
        self.eos.pack(out);
        self.viscosity.pack(out);
        self.gravity_theta.pack(out);
        self.neutrino.pack(out);
        self.cfl.pack(out);
        self.dt_min.pack(out);
        self.dt_max.pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok(SphConfig {
            eos: Pack::unpack(r)?,
            viscosity: Pack::unpack(r)?,
            gravity_theta: Pack::unpack(r)?,
            neutrino: Pack::unpack(r)?,
            cfl: Pack::unpack(r)?,
            dt_min: Pack::unpack(r)?,
            dt_max: Pack::unpack(r)?,
        })
    }
}

impl Pack for SphSimulation {
    fn pack(&self, out: &mut Vec<u8>) {
        self.parts.pack(out);
        self.cfg.pack(out);
        self.time.pack(out);
        self.steps.pack(out);
    }
    fn unpack(r: &mut Reader) -> Result<Self, CkptError> {
        Ok(SphSimulation {
            parts: Pack::unpack(r)?,
            cfg: Pack::unpack(r)?,
            time: Pack::unpack(r)?,
            steps: Pack::unpack(r)?,
        })
    }
}

impl SphSimulation {
    /// Serialize the full SPH state as a framed [`ckpt`] checkpoint.
    pub fn checkpoint(&self) -> Vec<u8> {
        ckpt::save(self)
    }

    /// Rebuild a simulation from [`SphSimulation::checkpoint`] bytes.
    ///
    /// Unlike [`SphSimulation::new`], this does *not* recompute the
    /// right-hand side: the saved derived fields are the ones the next
    /// step's first half-kick must see for the restart to be exact.
    pub fn restore(bytes: &[u8]) -> Result<SphSimulation, CkptError> {
        let sim: SphSimulation = ckpt::load(bytes)?;
        if sim.parts.is_empty() {
            return Err(CkptError::BadEncoding("empty particle set"));
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn gas_ball(n: usize, u: f64, seed: u64) -> Vec<SphParticle> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let r = rng.gen::<f64>().cbrt();
                let costh = rng.gen_range(-1.0..1.0f64);
                let sinth = (1.0 - costh * costh).sqrt();
                let phi = rng.gen::<f64>() * std::f64::consts::TAU;
                SphParticle::new(
                    [r * sinth * phi.cos(), r * sinth * phi.sin(), r * costh],
                    [0.0; 3],
                    1.0 / n as f64,
                    u,
                    i as u64,
                )
            })
            .collect()
    }

    fn assert_same_bits(a: &SphSimulation, b: &SphSimulation) {
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        assert_eq!(a.parts.len(), b.parts.len());
        for (p, q) in a.parts.iter().zip(&b.parts) {
            assert_eq!(p.id, q.id);
            for d in 0..3 {
                assert_eq!(p.pos[d].to_bits(), q.pos[d].to_bits(), "pos id {}", p.id);
                assert_eq!(p.vel[d].to_bits(), q.vel[d].to_bits(), "vel id {}", p.id);
                assert_eq!(p.acc[d].to_bits(), q.acc[d].to_bits(), "acc id {}", p.id);
            }
            assert_eq!(p.u.to_bits(), q.u.to_bits(), "u id {}", p.id);
            assert_eq!(p.rho.to_bits(), q.rho.to_bits(), "rho id {}", p.id);
            assert_eq!(p.enu.to_bits(), q.enu.to_bits(), "enu id {}", p.id);
            assert_eq!(p.h.to_bits(), q.h.to_bits(), "h id {}", p.id);
        }
    }

    /// The restart-equivalence property: interrupting a run at step k and
    /// restoring from the checkpoint reproduces the uninterrupted run
    /// bit-for-bit — including the adaptive CFL timesteps, which depend on
    /// every derived field surviving the round-trip exactly.
    #[test]
    fn sph_restart_is_bit_exact() {
        let cfg = SphConfig {
            neutrino: Some(NeutrinoConfig::default()),
            ..Default::default()
        };
        let mut sim = SphSimulation::new(gas_ball(250, 0.8, 21), cfg);
        sim.run_until(f64::INFINITY, 3);
        let snap = sim.checkpoint();
        // Uninterrupted run continues...
        sim.run_until(f64::INFINITY, 8);
        // ...while the restored one replays from step 3.
        let mut replay = SphSimulation::restore(&snap).expect("restore");
        assert_eq!(replay.steps, 3);
        replay.run_until(f64::INFINITY, 8);
        assert_same_bits(&sim, &replay);
    }

    #[test]
    fn checkpoint_roundtrips_hybrid_eos_config() {
        let cfg = SphConfig {
            eos: Eos::Hybrid {
                k: 1.2,
                gamma_soft: 4.0 / 3.0,
                gamma_stiff: 2.5,
                rho_nuc: 100.0,
                gamma_th: 1.5,
            },
            gravity_theta: None,
            ..Default::default()
        };
        let sim = SphSimulation::new(gas_ball(60, 0.3, 5), cfg);
        let replay = SphSimulation::restore(&sim.checkpoint()).expect("restore");
        match replay.cfg.eos {
            Eos::Hybrid { rho_nuc, .. } => assert_eq!(rho_nuc, 100.0),
            _ => panic!("eos variant lost"),
        }
        assert!(replay.cfg.gravity_theta.is_none());
        assert_same_bits(&sim, &replay);
    }

    #[test]
    fn corrupt_sph_checkpoint_is_rejected() {
        let sim = SphSimulation::new(gas_ball(40, 0.5, 9), SphConfig::default());
        let mut snap = sim.checkpoint();
        snap.truncate(snap.len() - 10);
        assert!(SphSimulation::restore(&snap).is_err());
        let snap2 = sim.checkpoint();
        let mut flipped = snap2.clone();
        flipped[ckpt::MAGIC.len() + 12] ^= 1;
        assert!(matches!(
            SphSimulation::restore(&flipped),
            Err(CkptError::BadCrc { .. })
        ));
    }
}
